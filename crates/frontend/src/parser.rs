//! Recursive-descent parser for the EARTH-C subset.

use crate::ast::*;
use crate::token::{lex, LexError, Pos, Tok, Token};
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

/// Parses a full translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_unit(src: &str) -> Result<Unit, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.unit()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            pos: self.pos(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ---- top level ----------------------------------------------------

    fn unit(&mut self) -> Result<Unit, ParseError> {
        let mut items = Vec::new();
        while self.peek() != &Tok::Eof {
            if self.peek() == &Tok::KwStruct && matches!(self.peek2(), Tok::Ident(_)) {
                // Could be a struct definition or a function returning a
                // struct pointer; look ahead for `{` after the name.
                let save = self.i;
                self.bump(); // struct
                let _name = self.ident()?;
                let is_def = self.peek() == &Tok::LBrace;
                self.i = save;
                if is_def {
                    items.push(Item::Struct(self.struct_decl()?));
                    continue;
                }
            }
            items.push(Item::Func(self.func_decl()?));
        }
        Ok(Unit { items })
    }

    fn struct_decl(&mut self) -> Result<StructDecl, ParseError> {
        let pos = self.pos();
        self.expect(Tok::KwStruct)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            let ty = self.type_expr()?;
            let fname = self.ident()?;
            self.expect(Tok::Semi)?;
            fields.push((ty, fname));
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        Ok(StructDecl { name, fields, pos })
    }

    /// Parses a type: `int`, `double`, `void`, `Name`, `Name*`,
    /// `struct Name`, `struct Name*`.
    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let base = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                TypeExpr::Int
            }
            Tok::KwDouble => {
                self.bump();
                TypeExpr::Double
            }
            Tok::KwVoid => {
                self.bump();
                TypeExpr::Void
            }
            Tok::KwStruct => {
                self.bump();
                let n = self.ident()?;
                TypeExpr::Struct(n)
            }
            Tok::Ident(n) => {
                self.bump();
                TypeExpr::Struct(n)
            }
            other => return Err(self.err(format!("expected a type, found {other}"))),
        };
        if self.eat(&Tok::Star) {
            match base {
                TypeExpr::Struct(n) => Ok(TypeExpr::Ptr(n)),
                _ => Err(self.err("only struct types may be pointed to".into())),
            }
        } else {
            Ok(base)
        }
    }

    fn func_decl(&mut self) -> Result<FuncDecl, ParseError> {
        let pos = self.pos();
        let ret = self.type_expr()?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let body = self.stmt_list(&Tok::RBrace)?;
        self.expect(Tok::RBrace)?;
        Ok(FuncDecl {
            ret,
            name,
            params,
            body,
            pos,
        })
    }

    /// Parses a parameter: `[qualifiers] type [local] [*] name`, accepting
    /// the paper's `node local *p` ordering as well as `local node *p`.
    fn param(&mut self) -> Result<Param, ParseError> {
        let pos = self.pos();
        let mut quals = Quals::default();
        while self.peek() == &Tok::KwLocal || self.peek() == &Tok::KwShared {
            match self.bump() {
                Tok::KwLocal => quals.local = true,
                Tok::KwShared => quals.shared = true,
                _ => unreachable!(),
            }
        }
        // Base type name (possibly followed by `local` then `*`).
        let base = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                TypeExpr::Int
            }
            Tok::KwDouble => {
                self.bump();
                TypeExpr::Double
            }
            Tok::KwStruct => {
                self.bump();
                let n = self.ident()?;
                TypeExpr::Struct(n)
            }
            Tok::Ident(n) => {
                self.bump();
                TypeExpr::Struct(n)
            }
            other => return Err(self.err(format!("expected parameter type, found {other}"))),
        };
        if self.eat(&Tok::KwLocal) {
            quals.local = true;
        }
        let ty = if self.eat(&Tok::Star) {
            match base {
                TypeExpr::Struct(n) => TypeExpr::Ptr(n),
                _ => return Err(self.err("only struct types may be pointed to".into())),
            }
        } else {
            base
        };
        let name = self.ident()?;
        Ok(Param {
            ty,
            quals,
            name,
            pos,
        })
    }

    // ---- statements ---------------------------------------------------

    fn stmt_list(&mut self, terminator: &Tok) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while self.peek() != terminator && self.peek() != &Tok::Eof {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(&Tok::LBrace) {
            let ss = self.stmt_list(&Tok::RBrace)?;
            self.expect(Tok::RBrace)?;
            Ok(ss)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Whether the upcoming tokens start a declaration.
    fn at_decl(&self) -> bool {
        match self.peek() {
            Tok::KwInt | Tok::KwDouble | Tok::KwShared | Tok::KwLocal | Tok::KwStruct => true,
            Tok::Ident(_) => {
                // `Name *x`, `Name x`, or `Name local *x` — an identifier
                // followed by `*`, another identifier, or `local` starts a
                // declaration; `Name =`, `Name ->` etc. do not.
                matches!(self.peek2(), Tok::Star | Tok::Ident(_) | Tok::KwLocal)
            }
            _ => false,
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let ss = self.stmt_list(&Tok::RBrace)?;
                self.expect(Tok::RBrace)?;
                Ok(Stmt::Block(ss))
            }
            Tok::ParOpen => {
                self.bump();
                let ss = self.stmt_list(&Tok::ParClose)?;
                self.expect(Tok::ParClose)?;
                Ok(Stmt::ParSeq(ss, pos))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_s = self.block_or_single()?;
                let else_s = if self.eat(&Tok::KwElse) {
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_s,
                    else_s,
                    pos,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::KwDo => {
                self.bump();
                let body = self.block_or_single()?;
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond, pos })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(Tok::Semi)?;
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            Tok::KwForall => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = Box::new(self.simple_stmt_no_semi()?);
                self.expect(Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(Tok::Semi)?;
                let step = Box::new(self.simple_stmt_no_semi()?);
                self.expect(Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::Forall {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            Tok::KwSwitch => {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrut = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut cases = Vec::new();
                let mut default = Vec::new();
                while self.peek() != &Tok::RBrace {
                    if self.eat(&Tok::KwCase) {
                        let v = match self.bump() {
                            Tok::Int(v) => v,
                            Tok::Minus => match self.bump() {
                                Tok::Int(v) => -v,
                                other => {
                                    return Err(
                                        self.err(format!("expected case value, found {other}"))
                                    )
                                }
                            },
                            other => {
                                return Err(self.err(format!("expected case value, found {other}")))
                            }
                        };
                        self.expect(Tok::Colon)?;
                        let mut body = Vec::new();
                        while !matches!(
                            self.peek(),
                            Tok::KwCase | Tok::KwDefault | Tok::RBrace | Tok::KwBreak
                        ) {
                            body.push(self.stmt()?);
                        }
                        if self.eat(&Tok::KwBreak) {
                            self.expect(Tok::Semi)?;
                        }
                        cases.push((v, body));
                    } else if self.eat(&Tok::KwDefault) {
                        self.expect(Tok::Colon)?;
                        while !matches!(
                            self.peek(),
                            Tok::KwCase | Tok::KwDefault | Tok::RBrace | Tok::KwBreak
                        ) {
                            default.push(self.stmt()?);
                        }
                        if self.eat(&Tok::KwBreak) {
                            self.expect(Tok::Semi)?;
                        }
                    } else {
                        return Err(self.err(format!(
                            "expected `case`, `default` or `}}`, found {}",
                            self.peek()
                        )));
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Stmt::Switch {
                    scrut,
                    cases,
                    default,
                    pos,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let e = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e, pos))
            }
            _ if self.at_decl() => {
                let s = self.decl_stmt()?;
                Ok(s)
            }
            _ => {
                let s = self.simple_stmt_no_semi()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        let mut quals = Quals::default();
        loop {
            if self.eat(&Tok::KwShared) {
                quals.shared = true;
            } else if self.eat(&Tok::KwLocal) {
                quals.local = true;
            } else {
                break;
            }
        }
        let base = self.type_expr()?;
        // Accept `Point local *p` ordering too.
        let ty = if self.eat(&Tok::KwLocal) {
            quals.local = true;
            if self.eat(&Tok::Star) {
                match base {
                    TypeExpr::Struct(n) => TypeExpr::Ptr(n),
                    _ => return Err(self.err("only struct types may be pointed to".into())),
                }
            } else {
                base
            }
        } else {
            base
        };
        let name = self.ident()?;
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(Stmt::Decl {
            ty,
            quals,
            name,
            init,
            pos,
        })
    }

    /// An assignment or call without the trailing semicolon (for use in
    /// `for`/`forall` headers and ordinary statements).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        // Lookahead: IDENT ( ... is a call; otherwise an lvalue assignment.
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek2() == &Tok::LParen {
                let e = self.expr()?;
                // Could still be `f(x) == y`-style inside an expression
                // statement; we only allow pure call statements here.
                if let Expr::Call { .. } = e {
                    return Ok(Stmt::ExprStmt(e));
                }
                return Err(self.err("expected a statement".into()));
            }
            let _ = name;
        }
        let lv = self.lvalue()?;
        self.expect(Tok::Assign)?;
        let rhs = self.expr()?;
        Ok(Stmt::Assign { lv, rhs, pos })
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let pos = self.pos();
        // `(*p).f` form.
        if self.peek() == &Tok::LParen && self.peek2() == &Tok::Star {
            self.bump(); // (
            self.bump(); // *
            let base = self.ident()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Dot)?;
            let mut path = vec![self.ident()?];
            while self.eat(&Tok::Dot) {
                path.push(self.ident()?);
            }
            return Ok(LValue::FieldPath {
                base,
                arrow: true,
                path,
                pos,
            });
        }
        let base = self.ident()?;
        match self.peek() {
            Tok::Arrow => {
                self.bump();
                let mut path = vec![self.ident()?];
                while self.eat(&Tok::Dot) {
                    path.push(self.ident()?);
                }
                Ok(LValue::FieldPath {
                    base,
                    arrow: true,
                    path,
                    pos,
                })
            }
            Tok::Dot => {
                self.bump();
                let mut path = vec![self.ident()?];
                while self.eat(&Tok::Dot) {
                    path.push(self.ident()?);
                }
                Ok(LValue::FieldPath {
                    base,
                    arrow: false,
                    path,
                    pos,
                })
            }
            _ => Ok(LValue::Var(base, pos)),
        }
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: AstBinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: AstBinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => AstBinOp::Eq,
                Tok::NotEq => AstBinOp::Ne,
                Tok::Lt => AstBinOp::Lt,
                Tok::Le => AstBinOp::Le,
                Tok::Gt => AstBinOp::Gt,
                Tok::Ge => AstBinOp::Ge,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => AstBinOp::Add,
                Tok::Minus => AstBinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => AstBinOp::Mul,
                Tok::Slash => AstBinOp::Div,
                Tok::Percent => AstBinOp::Rem,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        if self.eat(&Tok::Minus) {
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: AstUnOp::Neg,
                arg: Box::new(arg),
                pos,
            });
        }
        if self.eat(&Tok::Not) {
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: AstUnOp::Not,
                arg: Box::new(arg),
                pos,
            });
        }
        if self.eat(&Tok::Amp) {
            let name = self.ident()?;
            return Ok(Expr::AddrOf(name, pos));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Double(v) => {
                self.bump();
                Ok(Expr::Double(v, pos))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::Null(pos))
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(Tok::LParen)?;
                // Accept `sizeof(Name)` and `sizeof(struct Name)`.
                self.eat(&Tok::KwStruct);
                let n = self.ident()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Sizeof(n, pos))
            }
            Tok::LParen => {
                // `(*p).f` or parenthesized expression.
                if self.peek2() == &Tok::Star {
                    let save = self.i;
                    self.bump(); // (
                    self.bump(); // *
                    if let Tok::Ident(base) = self.peek().clone() {
                        self.bump();
                        if self.eat(&Tok::RParen) && self.eat(&Tok::Dot) {
                            let mut path = vec![self.ident()?];
                            while self.eat(&Tok::Dot) {
                                path.push(self.ident()?);
                            }
                            return Ok(Expr::FieldPath {
                                base,
                                arrow: true,
                                path,
                                pos,
                            });
                        }
                    }
                    self.i = save;
                }
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    let at = if self.eat(&Tok::At) {
                        if self.eat(&Tok::KwOwnerOf) {
                            self.expect(Tok::LParen)?;
                            let p = self.ident()?;
                            self.expect(Tok::RParen)?;
                            Some(AtClause::OwnerOf(p))
                        } else {
                            let e = self.postfix_expr()?;
                            Some(AtClause::Node(Box::new(e)))
                        }
                    } else {
                        None
                    };
                    return Ok(Expr::Call {
                        name,
                        args,
                        at,
                        pos,
                    });
                }
                match self.peek() {
                    Tok::Arrow => {
                        self.bump();
                        let mut path = vec![self.ident()?];
                        while self.eat(&Tok::Dot) {
                            path.push(self.ident()?);
                        }
                        Ok(Expr::FieldPath {
                            base: name,
                            arrow: true,
                            path,
                            pos,
                        })
                    }
                    Tok::Dot => {
                        self.bump();
                        let mut path = vec![self.ident()?];
                        while self.eat(&Tok::Dot) {
                            path.push(self.ident()?);
                        }
                        Ok(Expr::FieldPath {
                            base: name,
                            arrow: false,
                            path,
                            pos,
                        })
                    }
                    _ => Ok(Expr::Var(name, pos)),
                }
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_and_function() {
        let src = r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#;
        let unit = parse_unit(src).unwrap();
        assert_eq!(unit.items.len(), 2);
        match &unit.items[0] {
            Item::Struct(s) => {
                assert_eq!(s.name, "Point");
                assert_eq!(s.fields.len(), 2);
            }
            _ => panic!("expected struct"),
        }
        match &unit.items[1] {
            Item::Func(f) => {
                assert_eq!(f.name, "distance");
                assert_eq!(f.params.len(), 1);
                assert_eq!(f.params[0].ty, TypeExpr::Ptr("Point".into()));
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_forall_and_shared() {
        let src = r#"
            struct node { node* next; int value; };
            int count(node *head, node *x) {
                shared int count;
                node *p;
                writeto(&count, 0);
                forall (p = head; p != NULL; p = p->next) {
                    if (equal_node(p, x) @ OWNER_OF(p)) {
                        addto(&count, 1);
                    }
                }
                return valueof(&count);
            }
            int equal_node(node local *p, node *q) {
                return p->value == q->value;
            }
        "#;
        let unit = parse_unit(src).unwrap();
        assert_eq!(unit.items.len(), 3);
        if let Item::Func(f) = &unit.items[2] {
            assert!(f.params[0].quals.local);
            assert!(!f.params[1].quals.local);
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_parallel_sequence() {
        let src = r#"
            struct node { node* next; int v; };
            int count_rec(node *head, node *x) {
                int c1;
                int c2;
                {^
                    c1 = equal_node(head, x) @ OWNER_OF(x);
                    c2 = count_rec(head->next, x);
                ^}
                return c1 + c2;
            }
            int equal_node(node *p, node local *q) { return 1; }
        "#;
        let unit = parse_unit(src).unwrap();
        if let Item::Func(f) = &unit.items[1] {
            let has_par = f
                .body
                .iter()
                .any(|s| matches!(s, Stmt::ParSeq(arms, _) if arms.len() == 2));
            assert!(has_par, "expected a two-arm parallel sequence");
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_nested_field_paths() {
        let src = r#"
            struct H { int a; };
            void f(H *village) {
                int t;
                t = (*village).hosp.free_personnel;
                village->hosp.free_personnel = t;
            }
        "#;
        let unit = parse_unit(src).unwrap();
        if let Item::Func(f) = &unit.items[1] {
            match &f.body[1] {
                Stmt::Assign { rhs, .. } => match rhs {
                    Expr::FieldPath {
                        base, arrow, path, ..
                    } => {
                        assert_eq!(base, "village");
                        assert!(arrow);
                        assert_eq!(
                            path,
                            &vec!["hosp".to_string(), "free_personnel".to_string()]
                        );
                    }
                    _ => panic!("expected field path"),
                },
                _ => panic!("expected assignment"),
            }
        }
    }

    #[test]
    fn parses_switch() {
        let src = r#"
            struct Q { int c; };
            int f(int q1) {
                int p1;
                switch (q1) {
                    case 0: p1 = 1; break;
                    case 1: p1 = 2; break;
                    default: p1 = 3;
                }
                return p1;
            }
        "#;
        let unit = parse_unit(src).unwrap();
        if let Item::Func(f) = &unit.items[1] {
            match &f.body[1] {
                Stmt::Switch { cases, default, .. } => {
                    assert_eq!(cases.len(), 2);
                    assert_eq!(default.len(), 1);
                }
                _ => panic!("expected switch"),
            }
        }
    }

    #[test]
    fn parses_for_and_do_while() {
        let src = r#"
            struct S { int x; };
            void f() {
                int i;
                for (i = 0; i < 10; i = i + 1) { i = i; }
                do { i = i - 1; } while (i > 0);
            }
        "#;
        let unit = parse_unit(src).unwrap();
        if let Item::Func(f) = &unit.items[1] {
            assert!(matches!(f.body[1], Stmt::For { .. }));
            assert!(matches!(f.body[2], Stmt::DoWhile { .. }));
        }
    }

    #[test]
    fn error_has_position() {
        let e = parse_unit("struct P { int x; }").unwrap_err();
        assert!(e.pos.line >= 1);
    }

    #[test]
    fn malloc_with_sizeof() {
        let src = r#"
            struct N { N* next; };
            void f() {
                N *p;
                p = malloc(sizeof(N));
                p = malloc_on(3, sizeof(N));
            }
        "#;
        parse_unit(src).unwrap();
    }

    #[test]
    fn precedence() {
        let src = r#"
            struct S { int x; };
            void f() {
                int a;
                a = 1 + 2 * 3 < 4 && 5 == 6 || 0 != 1;
            }
        "#;
        let unit = parse_unit(src).unwrap();
        if let Item::Func(f) = &unit.items[1] {
            if let Stmt::Assign { rhs, .. } = &f.body[1] {
                // Top-level must be `||`.
                assert!(
                    matches!(
                        rhs,
                        Expr::Binary {
                            op: AstBinOp::Or,
                            ..
                        }
                    ),
                    "got {rhs:?}"
                );
            }
        }
    }
}
