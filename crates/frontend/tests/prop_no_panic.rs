//! Fuzz-style property: the frontend never panics, whatever bytes it is
//! fed — it either produces a program or a positioned error.

#[test]
fn arbitrary_ascii_never_panics() {
    earth_qcheck::cases(256, |rng| {
        let len = rng.index(401);
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline, mirroring the old `[ -~\n]`.
                let c = rng.range(b' ' as i64, b'~' as i64 + 2) as u8;
                if c > b'~' {
                    '\n'
                } else {
                    c as char
                }
            })
            .collect();
        let _ = earth_frontend::compile(&src);
    });
}

#[test]
fn token_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "struct", "int", "double", "if", "while", "forall", "return", "{^", "^}", "{", "}", "(",
        ")", ";", "->", "*", "=", "p", "S", "42", "@", "OWNER_OF", "NULL", "sizeof", "&", "shared",
        "local",
    ];
    earth_qcheck::cases(256, |rng| {
        let len = rng.index(60);
        let src = (0..len)
            .map(|_| *rng.pick(TOKENS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = earth_frontend::compile(&src);
    });
}
