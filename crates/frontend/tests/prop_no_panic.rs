//! Fuzz-style property: the frontend never panics, whatever bytes it is
//! fed — it either produces a program or a positioned error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_ascii_never_panics(src in "[ -~\n]{0,400}") {
        let _ = earth_frontend::compile(&src);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("struct".to_string()), Just("int".to_string()),
            Just("double".to_string()), Just("if".to_string()),
            Just("while".to_string()), Just("forall".to_string()),
            Just("return".to_string()), Just("{^".to_string()),
            Just("^}".to_string()), Just("{".to_string()),
            Just("}".to_string()), Just("(".to_string()),
            Just(")".to_string()), Just(";".to_string()),
            Just("->".to_string()), Just("*".to_string()),
            Just("=".to_string()), Just("p".to_string()),
            Just("S".to_string()), Just("42".to_string()),
            Just("@".to_string()), Just("OWNER_OF".to_string()),
            Just("NULL".to_string()), Just("sizeof".to_string()),
            Just("&".to_string()), Just("shared".to_string()),
            Just("local".to_string()),
        ], 0..60)) {
        let src = tokens.join(" ");
        let _ = earth_frontend::compile(&src);
    }
}
