//! Error-path coverage for the EARTH-C frontend: every rejection carries a
//! position and a useful message.

use earth_frontend::{compile, FrontendError};

fn err(src: &str) -> String {
    match compile(src) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected an error for:\n{src}"),
    }
}

#[test]
fn unknown_struct_in_field() {
    let e = err("struct A { B* x; }; int main() { return 0; }");
    assert!(e.contains("unknown struct"), "{e}");
}

#[test]
fn recursive_by_value_struct() {
    let e = err("struct A { A inner; }; int main() { return 0; }");
    assert!(e.contains("recursively contains itself"), "{e}");
}

#[test]
fn duplicate_struct() {
    let e = err("struct A { int x; }; struct A { int y; }; int main() { return 0; }");
    assert!(e.contains("duplicate struct"), "{e}");
}

#[test]
fn duplicate_function() {
    let e = err("struct A { int x; }; int f() { return 0; } int f() { return 1; } ");
    assert!(e.contains("duplicate function"), "{e}");
}

#[test]
fn builtin_shadowing() {
    let e = err("struct A { int x; }; int sqrt(int v) { return v; }");
    assert!(e.contains("shadows a builtin"), "{e}");
}

#[test]
fn void_variable() {
    let e = err("struct A { int x; }; int main() { void v; return 0; }");
    assert!(e.contains("void"), "{e}");
}

#[test]
fn arrow_on_struct_value() {
    let e = err("struct A { int x; }; int main() { A s; s.x = 1; return s->x; }");
    assert!(e.contains("use `.`"), "{e}");
}

#[test]
fn dot_on_pointer() {
    let e = err("struct A { int x; }; int f(A *p) { return p.x; }");
    assert!(e.contains("use `->`"), "{e}");
}

#[test]
fn unknown_field() {
    let e = err("struct A { int x; }; int f(A *p) { return p->y; }");
    assert!(e.contains("no field `y`"), "{e}");
}

#[test]
fn unknown_function_call() {
    let e = err("struct A { int x; }; int main() { return g(); }");
    assert!(e.contains("unknown function"), "{e}");
}

#[test]
fn arity_mismatch() {
    let e = err("struct A { int x; }; int g(int a) { return a; } int main() { return g(); }");
    assert!(e.contains("expects 1 arguments"), "{e}");
}

#[test]
fn local_on_non_pointer() {
    let e = err("struct A { int x; }; int main() { local int v; return 0; }");
    assert!(e.contains("`local` only applies to pointers"), "{e}");
}

#[test]
fn shared_must_be_int() {
    let e = err("struct A { int x; }; int main() { shared double d; return 0; }");
    assert!(e.contains("must have type int"), "{e}");
}

#[test]
fn shared_read_requires_valueof() {
    let e = err("struct A { int x; }; int main() { shared int c; return c; }");
    assert!(e.contains("valueof"), "{e}");
}

#[test]
fn shared_write_requires_writeto() {
    let e = err("struct A { int x; }; int main() { shared int c; c = 1; return 0; }");
    assert!(e.contains("writeto"), "{e}");
}

#[test]
fn addr_of_outside_atomics() {
    let e = err("struct A { int x; }; int main() { int v; int w; w = &v; return w; }");
    assert!(e.contains("&"), "{e}");
}

#[test]
fn sizeof_outside_malloc() {
    let e = err("struct A { int x; }; int main() { return sizeof(A); }");
    assert!(e.contains("sizeof"), "{e}");
}

#[test]
fn forall_step_too_complex() {
    let e = err(r#"
        struct N { N* next; int v; };
        int main() {
            N *p;
            forall (p = NULL; p != NULL; p = p->next->next) { }
            return 0;
        }
    "#);
    // p->next->next is not even parseable as a single postfix chain in the
    // subset; whichever stage rejects it must say something useful.
    assert!(!e.is_empty());
}

#[test]
fn forall_impure_condition() {
    let e = err(r#"
        struct N { N* next; int v; };
        int main() {
            N *p;
            N *q;
            q = malloc(sizeof(N));
            q->v = 1;
            forall (p = q; q->v > 0; p = p->next) { }
            return 0;
        }
    "#);
    assert!(e.contains("simple comparisons"), "{e}");
}

#[test]
fn missing_return_value() {
    let e = err("struct A { int x; }; int main() { return; }");
    assert!(e.contains("missing return value"), "{e}");
}

#[test]
fn void_function_returning_value() {
    let e = err("struct A { int x; }; void f() { return 3; } int main() { return 0; }");
    assert!(e.contains("void function returns"), "{e}");
}

#[test]
fn void_function_used_as_value() {
    let e = err("struct A { int x; }; void f() { } int main() { return f(); }");
    assert!(e.contains("void"), "{e}");
}

#[test]
fn positions_point_at_the_problem() {
    let e = compile("struct A { int x; };\nint main() {\n    return y;\n}").unwrap_err();
    match e {
        FrontendError::Lower(le) => assert_eq!(le.pos.line, 3, "{le}"),
        other => panic!("expected lower error, got {other}"),
    }
}
