//! The concrete passes of the EARTH-C pipeline.
//!
//! Each former hard-coded phase of the driver is a [`Pass`]:
//!
//! | pass | kind | cache discipline |
//! |---|---|---|
//! | [`InlinePass`] | transform | invalidates whole program when it inlined |
//! | [`FieldReorderPass`] | transform | invalidates whole program when it permuted |
//! | [`LocalityPass`] | transform | invalidates whole program when it upgraded |
//! | [`VerifyPlacementPass`] | analysis consumer | reads the cache; aborts on violations |
//! | [`RaceLintPass`] | analysis consumer | reads the cache; records verdicts |
//! | [`ProbAliasPass`] | analysis consumer | reads the cache; surveys probabilistic facts |
//! | [`EscapePass`] | analysis consumer | reads the cache; surveys escape/affinity verdicts |
//! | [`OptimizePass`] | transform | reads the cache, then invalidates per changed [`FuncId`](earth_ir::FuncId) |
//! | [`PgoPass`] | transform | [`OptimizePass`] under a measured [`ProfileDb`]; same discipline |
//! | [`ValidateIrPass`] | check | pure; aborts on IR errors |

use crate::{Pass, PassReport};
use earth_analysis::{AnalysisCache, EscapeAnalysis, ProbFacts};
use earth_commopt::{
    inline_functions, optimize_program_with, reorder_fields, CommOptConfig, InlineConfig,
    OptReport, SelectionStats,
};
use earth_ir::{assign_program_sites, Diagnostic, Program, Severity};
use earth_lint::LintReport;
use earth_profile::ProfileDb;
use std::sync::Arc;

/// Local function inlining (the paper's Phase-I pass).
#[derive(Debug, Clone)]
pub struct InlinePass {
    /// Inliner limits.
    pub cfg: InlineConfig,
}

impl InlinePass {
    /// A pass with the given configuration.
    pub fn new(cfg: InlineConfig) -> Self {
        InlinePass { cfg }
    }
}

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let r = inline_functions(prog, &self.cfg);
        report.counter("inlined_calls", r.inlined_calls as u64);
        if r.inlined_calls > 0 {
            // Call sites disappeared: every caller's effects changed.
            cache.invalidate_all();
        }
        Ok(())
    }
}

/// Struct field reordering (the paper's §7 extension).
#[derive(Debug, Clone, Copy, Default)]
pub struct FieldReorderPass;

impl Pass for FieldReorderPass {
    fn name(&self) -> &'static str {
        "field-reorder"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let r = reorder_fields(prog);
        report.counter("structs_reordered", r.len() as u64);
        if !r.is_empty() {
            // FieldIds were permuted program-wide: every field-sensitive
            // read/write set is stale.
            cache.invalidate_all();
        }
        Ok(())
    }
}

/// Locality inference: upgrades provably-local pointers.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalityPass;

impl Pass for LocalityPass {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let r = earth_analysis::infer_locality(prog);
        report.counter("vars_upgraded", r.len() as u64);
        if !r.is_empty() {
            cache.invalidate_all();
        }
        Ok(())
    }
}

/// The placement translation validator ([`earth_lint::verify_program_with`])
/// run over the motions the optimizer is about to perform. Any violation
/// aborts the pipeline.
#[derive(Debug, Clone)]
pub struct VerifyPlacementPass {
    /// The optimizer configuration whose selection is replayed.
    pub cfg: CommOptConfig,
}

impl VerifyPlacementPass {
    /// A pass validating selection under `cfg`.
    pub fn new(cfg: CommOptConfig) -> Self {
        VerifyPlacementPass { cfg }
    }
}

impl Pass for VerifyPlacementPass {
    fn name(&self) -> &'static str {
        "verify-placement"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let analysis = cache.get(prog);
        let violations = earth_lint::verify_program_with(prog, &self.cfg, analysis);
        report.counter("violations", violations.len() as u64);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// The parallel-soundness race linter ([`earth_lint::lint_program_with`]).
///
/// Verdicts are recorded as diagnostics on the pass report; a possibly-racy
/// construct does **not** abort the pipeline (EARTH-C semantics trust the
/// programmer's `forall`/ParSeq assertion) unless
/// [`fail_on_racy`](RaceLintPass::fail_on_racy) is set.
#[derive(Debug, Clone, Default)]
pub struct RaceLintPass {
    /// Abort the pipeline when any construct is possibly racy.
    pub fail_on_racy: bool,
    /// The full report of the last run (verdicts per construct).
    pub last: Option<LintReport>,
}

impl RaceLintPass {
    /// A non-fatal linting pass.
    pub fn new() -> Self {
        RaceLintPass::default()
    }

    /// A linting pass that aborts on any possibly-racy construct.
    pub fn fatal() -> Self {
        RaceLintPass {
            fail_on_racy: true,
            last: None,
        }
    }
}

impl Pass for RaceLintPass {
    fn name(&self) -> &'static str {
        "race-lint"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let analysis = cache.get(prog);
        let lint = earth_lint::lint_program_with(prog, analysis);
        report.counter("constructs", lint.verdicts.len() as u64);
        report.counter(
            "racy",
            lint.verdicts.iter().filter(|v| !v.independent).count() as u64,
        );
        report.diagnostics.extend(lint.diagnostics.iter().cloned());
        let failed = self.fail_on_racy && !lint.all_independent();
        let diags = lint.diagnostics.clone();
        self.last = Some(lint);
        if failed {
            Err(diags)
        } else {
            Ok(())
        }
    }
}

/// Probabilistic alias + loop pointer-induction survey (prob-alias mode).
///
/// The optimizer recomputes [`ProbFacts`] per function from the shared
/// cached analysis when it runs (facts are cheap relative to the points-to
/// fixpoint the cache holds); this pass surfaces the same facts as pipeline
/// counters *before* selection so timing reports and drivers can see what
/// prob-alias mode has to work with: how many branches/loops received a
/// likelihood annotation and how many loop pointer inductions were
/// recognized. It mutates nothing and invalidates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbAliasPass;

impl Pass for ProbAliasPass {
    fn name(&self) -> &'static str {
        "prob-alias"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let analysis = cache.get(prog);
        let mut annotated = 0u64;
        let mut inductions = 0u64;
        for (fid, f) in prog.iter_functions() {
            let facts = ProbFacts::compute(f, analysis.function(fid), None);
            annotated += facts.n_annotated() as u64;
            inductions += facts.inductions().len() as u64;
        }
        report.counter("sites_annotated", annotated);
        report.counter("inductions_found", inductions);
        Ok(())
    }
}

/// Whole-program escape & node-affinity survey (`--escape on`).
///
/// The optimizer computes its own [`EscapeAnalysis`] instance when it runs
/// (once, before the per-function fan-out); this pass surfaces the same
/// verdicts as pipeline counters *before* selection, so timing reports and
/// drivers can see how much communication the escape upgrades stand to
/// delete: how many allocation-site regions proved node-local, how many
/// stayed shared, and how many `MaybeRemote` pointers are upgradable. It
/// mutates nothing and invalidates nothing; cache awareness comes from
/// [`OptimizePass`], whose per-function invalidation fires on escape-only
/// changes because [`MotionLog::is_empty`](earth_commopt::MotionLog)
/// accounts for recorded upgrades.
#[derive(Debug, Clone, Copy, Default)]
pub struct EscapePass;

impl Pass for EscapePass {
    fn name(&self) -> &'static str {
        "escape"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let analysis = cache.get(prog);
        let esc = EscapeAnalysis::compute(prog, &analysis.summaries);
        report.counter("regions_node_local", esc.regions_node_local as u64);
        report.counter("regions_shared", esc.regions_shared as u64);
        report.counter("vars_upgradable", esc.total_upgrades() as u64);
        Ok(())
    }
}

/// The paper's communication optimization (possible-placement analysis +
/// selection + transformation), fanned out per function across scoped
/// worker threads with a deterministic [`FuncId`](earth_ir::FuncId)-ordered
/// merge.
#[derive(Debug, Clone)]
pub struct OptimizePass {
    /// Optimizer configuration.
    pub cfg: CommOptConfig,
    /// Fan-out width (clamped to `1..=#functions`).
    pub workers: usize,
    /// The per-function reports of the last run.
    pub last: Option<OptReport>,
}

impl OptimizePass {
    /// A pass optimizing under `cfg` with the given fan-out width.
    pub fn new(cfg: CommOptConfig, workers: usize) -> Self {
        OptimizePass {
            cfg,
            workers,
            last: None,
        }
    }
}

impl Pass for OptimizePass {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let analysis = cache.get(prog);
        let opt = optimize_program_with(prog, &self.cfg, analysis, self.workers);
        // Only the functions selection actually rewrote are stale.
        let mut changed = 0u64;
        for f in &opt.functions {
            if f.stats != SelectionStats::default() || !f.motion.is_empty() {
                cache.invalidate_function(f.func);
                changed += 1;
            }
        }
        let t = opt.total();
        report.counter("workers", self.workers as u64);
        report.counter("functions_changed", changed);
        report.counter("pipelined_reads", t.pipelined_reads as u64);
        report.counter("blocked_spans", t.blocked_spans as u64);
        report.counter("blocked_writebacks", t.blocked_writebacks as u64);
        report.counter("induction_blocks", t.induction_blocks as u64);
        report.counter("reads_rewritten", t.reads_rewritten as u64);
        report.counter("writes_rewritten", t.writes_rewritten as u64);
        self.last = Some(opt);
        Ok(())
    }
}

/// Profile-guided communication optimization: [`OptimizePass`] driven by a
/// measured [`ProfileDb`].
///
/// The pass runs on the pre-selection tree — the same tree the
/// instrumented build assigned [`SiteId`](earth_ir::SiteId)s over, since
/// both compiles share the deterministic pre-passes — so the profile's
/// sites resolve by construction wherever the code is unchanged. Beyond
/// [`OptimizePass`]'s counters it reports the PGO accounting the driver
/// surfaces as one line:
///
/// * `sites_instrumented` — sites assigned over the program about to be
///   optimized (what an instrumented build of it would record);
/// * `sites_matched` — how many of those sites the profile has counters
///   for (zero means the profile is stale or from a different program);
/// * `decisions_flipped` — selection decisions where the measured
///   cost-model choice differed from the static heuristic.
#[derive(Debug, Clone)]
pub struct PgoPass {
    /// Optimizer configuration; [`CommOptConfig::profile`] holds the
    /// database the pass was built with.
    pub cfg: CommOptConfig,
    /// Fan-out width (clamped to `1..=#functions`).
    pub workers: usize,
    /// The per-function reports of the last run.
    pub last: Option<OptReport>,
}

impl PgoPass {
    /// A profile-guided optimization pass: `cfg` with its
    /// [`profile`](CommOptConfig::profile) replaced by `db`.
    pub fn new(cfg: CommOptConfig, db: Arc<ProfileDb>, workers: usize) -> Self {
        let mut cfg = cfg;
        cfg.profile = Some(db);
        PgoPass {
            cfg,
            workers,
            last: None,
        }
    }
}

impl Pass for PgoPass {
    fn name(&self) -> &'static str {
        "pgo-optimize"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let db = self
            .cfg
            .profile
            .clone()
            .expect("PgoPass is always constructed with a profile");
        // Site accounting must happen before selection rewrites the tree:
        // afterwards optimizer-inserted statements carry fresh labels that
        // no instrumented build ever saw.
        let sites = assign_program_sites(prog);
        let mut matched = 0u64;
        for (fid, f) in prog.iter_functions() {
            matched += db.function_view(fid, f).matched() as u64;
        }
        let analysis = cache.get(prog);
        let opt = optimize_program_with(prog, &self.cfg, analysis, self.workers);
        let mut changed = 0u64;
        for f in &opt.functions {
            if f.stats != SelectionStats::default() || !f.motion.is_empty() {
                cache.invalidate_function(f.func);
                changed += 1;
            }
        }
        let t = opt.total();
        report.counter("sites_instrumented", sites.len() as u64);
        report.counter("sites_matched", matched);
        report.counter("decisions_flipped", t.pgo_flips as u64);
        report.counter("workers", self.workers as u64);
        report.counter("functions_changed", changed);
        report.counter("pipelined_reads", t.pipelined_reads as u64);
        report.counter("blocked_spans", t.blocked_spans as u64);
        report.counter("blocked_writebacks", t.blocked_writebacks as u64);
        report.counter("induction_blocks", t.induction_blocks as u64);
        report.counter("reads_rewritten", t.reads_rewritten as u64);
        report.counter("writes_rewritten", t.writes_rewritten as u64);
        self.last = Some(opt);
        Ok(())
    }
}

/// Structural IR validation ([`earth_ir::validate_program_diags`]): the
/// final guard that the pipeline produced well-formed SIMPLE.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateIrPass;

impl Pass for ValidateIrPass {
    fn name(&self) -> &'static str {
        "validate-ir"
    }

    fn run(
        &mut self,
        prog: &mut Program,
        _cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>> {
        let diags = earth_ir::validate_program_diags(prog);
        report.counter("diagnostics", diags.len() as u64);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            Err(diags)
        } else {
            report.diagnostics.extend(diags);
            Ok(())
        }
    }
}
