//! # earth-pass — the pass-manager layer of the EARTH-C pipeline
//!
//! The paper's framework is explicitly staged: points-to/connection
//! analysis feeds read/write sets, which feed possible-placement and then
//! communication selection (§3, Fig. 2). This crate turns that staging
//! into an LLVM-style pass/analysis-manager architecture:
//!
//! * a [`Pass`] trait — a named unit of work over the IR that may consume
//!   the shared analysis (through the [`AnalysisCache`]) and must declare
//!   what it invalidated when it mutates the program;
//! * a [`PassManager`] that runs registered passes in order, timing each
//!   one and attributing analysis-cache activity (hits, misses,
//!   per-function recomputes, invalidations) per pass;
//! * a [`PipelineReport`] summarizing the run — renderable as a timings
//!   table (`earthcc run --timings`) or machine-readable JSON
//!   (`--report-json`).
//!
//! The payoff: an `inline → field-reorder → locality → verify → lint →
//! optimize` pipeline performs exactly **one** whole-program analysis
//! instead of one per consumer, and the optimize pass fans per-function
//! placement + selection out across scoped worker threads with a
//! deterministic (FuncId-ordered) merge.
//!
//! # Examples
//!
//! ```
//! use earth_pass::{PassManager, passes};
//! use earth_analysis::AnalysisCache;
//!
//! let mut prog = earth_frontend::compile(r#"
//!     struct Point { double x; double y; };
//!     double distance(Point *p) {
//!         double d;
//!         d = sqrt(p->x * p->x + p->y * p->y);
//!         return d;
//!     }
//! "#).unwrap();
//! let cfg = earth_commopt::CommOptConfig::default();
//! let mut cache = AnalysisCache::new();
//! let mut pm = PassManager::new();
//! pm.register(passes::VerifyPlacementPass::new(cfg.clone()));
//! pm.register(passes::RaceLintPass::new());
//! pm.register(passes::OptimizePass::new(cfg, 1));
//! pm.register(passes::ValidateIrPass);
//! let report = pm.run(&mut prog, &mut cache).unwrap();
//! // Three analysis consumers, one whole-program analysis:
//! assert_eq!(report.cache.misses, 1);
//! assert_eq!(report.cache.hits, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod passes;

pub use passes::{
    EscapePass, FieldReorderPass, InlinePass, LocalityPass, OptimizePass, PgoPass, ProbAliasPass,
    RaceLintPass, ValidateIrPass, VerifyPlacementPass,
};

use earth_analysis::{AnalysisCache, CacheStats};
use earth_ir::json::string as json_string;
use earth_ir::{Diagnostic, Program};
use std::fmt;
use std::time::{Duration, Instant};

/// A named compilation pass.
///
/// A pass reads and/or mutates the program; whenever it mutates the IR it
/// must invalidate the [`AnalysisCache`] at the appropriate granularity
/// (whole-program for structural changes, per-[`FuncId`](earth_ir::FuncId)
/// for local rewrites) — the cache is how later passes see a consistent
/// analysis without recomputing it.
pub trait Pass {
    /// Stable name used in reports and timings.
    fn name(&self) -> &'static str;

    /// Runs the pass. Record counters and non-fatal diagnostics on
    /// `report`; return `Err` with the offending diagnostics to abort the
    /// pipeline.
    fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
        report: &mut PassReport,
    ) -> Result<(), Vec<Diagnostic>>;
}

/// Instrumentation for one executed pass.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Wall-clock time spent in [`Pass::run`].
    pub wall: Duration,
    /// Analysis-cache activity attributed to this pass (delta of the
    /// cache's counters across the run).
    pub cache: CacheStats,
    /// Pass-specific counters (motion counts, inlined calls, …).
    pub counters: Vec<(&'static str, u64)>,
    /// Non-fatal diagnostics the pass produced (lint verdicts, warnings).
    pub diagnostics: Vec<Diagnostic>,
}

impl PassReport {
    /// Appends a named counter.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Looks up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// The whole pipeline's instrumentation: one [`PassReport`] per executed
/// pass plus the final analysis-cache totals.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Reports in execution order (includes the failing pass, if any).
    pub passes: Vec<PassReport>,
    /// Final cache counters for the whole run.
    pub cache: CacheStats,
}

impl PipelineReport {
    /// Total wall-clock time across all passes.
    pub fn total_wall(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// The report of the named pass, if it ran.
    pub fn pass(&self, name: &str) -> Option<&PassReport> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Human-readable timings table (the `--timings` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>12}  {:<28} counters\n",
            "pass", "wall", "cache (hit/miss/refn/inval)"
        ));
        for p in &self.passes {
            let cache = format!(
                "{}/{}/{}/{}",
                p.cache.hits, p.cache.misses, p.cache.function_recomputes, p.cache.invalidations
            );
            let counters = p
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<18} {:>12}  {:<28} {}\n",
                p.name,
                format!("{:.1?}", p.wall),
                cache,
                counters
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>12}  analyses={} hits={} refns={} invals={}\n",
            "total",
            format!("{:.1?}", self.total_wall()),
            self.cache.misses,
            self.cache.hits,
            self.cache.function_recomputes,
            self.cache.invalidations
        ));
        out
    }

    /// Machine-readable JSON encoding (hand-rolled via the shared
    /// [`earth_ir::json`] writer; the offline image has no serde).
    pub fn to_json(&self) -> String {
        let cache_json = |c: &CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"function_recomputes\":{},\"invalidations\":{}}}",
                c.hits, c.misses, c.function_recomputes, c.invalidations
            )
        };
        let mut s = String::from("{\"passes\":[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"wall_ns\":{},\"cache\":{},\"counters\":{{",
                json_string(p.name),
                p.wall.as_nanos(),
                cache_json(&p.cache)
            ));
            for (j, (n, v)) in p.counters.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{}", json_string(n), v));
            }
            s.push_str("},\"diagnostics\":");
            s.push_str(&earth_ir::diag::to_json_array(&p.diagnostics));
            s.push('}');
        }
        s.push_str(&format!(
            "],\"total_wall_ns\":{},\"cache\":{}}}",
            self.total_wall().as_nanos(),
            cache_json(&self.cache)
        ));
        s
    }
}

/// A pipeline abort: the named pass rejected the program.
#[derive(Debug)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: &'static str,
    /// The violations it reported.
    pub diagnostics: Vec<Diagnostic>,
    /// Instrumentation up to and including the failing pass.
    pub report: PipelineReport,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass `{}` failed:\n{}",
            self.pass,
            earth_ir::diag::render_all(&self.diagnostics)
        )
    }
}

impl std::error::Error for PassError {}

/// Runs registered [`Pass`]es in order over one program and one shared
/// [`AnalysisCache`], timing each pass and attributing cache activity.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.passes.iter().map(|p| p.name()))
            .finish()
    }
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Appends a pass to the pipeline; passes run in registration order.
    pub fn register(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order. Stops at the first failing pass,
    /// returning its diagnostics together with the instrumentation
    /// collected so far.
    pub fn run(
        &mut self,
        prog: &mut Program,
        cache: &mut AnalysisCache,
    ) -> Result<PipelineReport, PassError> {
        let mut report = PipelineReport::default();
        for pass in &mut self.passes {
            let mut pr = PassReport {
                name: pass.name(),
                ..PassReport::default()
            };
            let before = cache.stats();
            let start = Instant::now();
            let result = pass.run(prog, cache, &mut pr);
            pr.wall = start.elapsed();
            pr.cache = cache.stats().delta_since(&before);
            report.passes.push(pr);
            report.cache = cache.stats();
            if let Err(diagnostics) = result {
                return Err(PassError {
                    pass: pass.name(),
                    diagnostics,
                    report,
                });
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    const SRC: &str = r#"
        struct Point { double x; double y; };
        double distance(Point *p) {
            double d;
            d = sqrt(p->x * p->x + p->y * p->y);
            return d;
        }
    "#;

    /// verify + lint + optimize + validate share one whole-program
    /// analysis through the cache.
    #[test]
    fn default_pipeline_analyzes_once() {
        let mut prog = compile(SRC).unwrap();
        let cfg = earth_commopt::CommOptConfig::default();
        let mut cache = AnalysisCache::new();
        let mut pm = PassManager::new();
        pm.register(VerifyPlacementPass::new(cfg.clone()));
        pm.register(RaceLintPass::new());
        pm.register(OptimizePass::new(cfg, 2));
        pm.register(ValidateIrPass);
        let report = pm.run(&mut prog, &mut cache).unwrap();
        assert_eq!(report.cache.misses, 1, "{}", report.render());
        assert_eq!(report.cache.hits, 2, "{}", report.render());
        // The optimize pass invalidated the function it rewrote.
        assert!(report.cache.invalidations >= 1, "{}", report.render());
        // Optimization actually happened.
        let opt = report.pass("optimize").unwrap();
        assert_eq!(opt.get_counter("pipelined_reads"), Some(2));
    }

    /// A pass that mutates the IR marks the cache, and the next consumer
    /// refreshes only the changed function.
    #[test]
    fn per_function_refresh_after_optimize() {
        let mut prog = compile(SRC).unwrap();
        let cfg = earth_commopt::CommOptConfig::default();
        let mut cache = AnalysisCache::new();
        let mut pm = PassManager::new();
        pm.register(OptimizePass::new(cfg, 1));
        pm.register(RaceLintPass::new());
        let report = pm.run(&mut prog, &mut cache).unwrap();
        // The lint pass after optimize pays at most a per-function refresh
        // or one escalated re-analysis — never more.
        assert!(report.cache.misses <= 2, "{}", report.render());
    }

    #[test]
    fn report_renders_and_serializes() {
        let mut prog = compile(SRC).unwrap();
        let cfg = earth_commopt::CommOptConfig::default();
        let mut cache = AnalysisCache::new();
        let mut pm = PassManager::new();
        pm.register(OptimizePass::new(cfg, 1));
        pm.register(ValidateIrPass);
        let report = pm.run(&mut prog, &mut cache).unwrap();
        let text = report.render();
        assert!(text.contains("optimize"), "{text}");
        assert!(text.contains("validate-ir"), "{text}");
        let json = report.to_json();
        assert!(json.starts_with("{\"passes\":["), "{json}");
        assert!(json.contains("\"name\":\"optimize\""), "{json}");
        assert!(json.contains("\"total_wall_ns\""), "{json}");
    }
}
