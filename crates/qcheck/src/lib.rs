//! # earth-qcheck — a tiny deterministic property-testing harness
//!
//! The workspace is built in fully offline environments, so it cannot pull
//! `proptest` from a registry. This crate provides the small subset the test
//! suites actually need: a seeded, splittable pseudo-random generator and a
//! case runner that reports the failing seed so a counterexample can be
//! replayed with `Rng::new(seed)`.
//!
//! Generation is *deterministic*: the same crate version always explores the
//! same inputs, which keeps CI reproducible (there is no shrinking — failures
//! point at a seed instead).
//!
//! # Examples
//!
//! ```
//! earth_qcheck::cases(64, |rng| {
//!     let a = rng.range(0, 1000);
//!     let b = rng.range(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A small deterministic pseudo-random generator (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// Runs `f` once per case with an independent seeded [`Rng`].
///
/// On panic, re-raises the original payload after printing the seed so the
/// failing case can be replayed in isolation.
///
/// # Panics
///
/// Propagates any panic raised by `f`.
pub fn cases<F: FnMut(&mut Rng)>(n: u64, mut f: F) {
    for seed in 0..n {
        let mut rng = Rng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("earth-qcheck: property failed at seed {seed} (of {n} cases)");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(-3, 9);
            assert!((-3..9).contains(&v));
        }
    }

    #[test]
    fn cases_reports_each_seed_once() {
        let mut seen = Vec::new();
        cases(5, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 5);
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "independent seeds should differ");
    }
}
