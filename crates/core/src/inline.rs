//! Local function inlining — the Phase-I transformation of the
//! EARTH-McCAT compiler (Figure 2 of the paper) that the communication
//! optimizer benefits from: "one of the pointer parameters passed to the
//! function distance remains invariant across several calls ... Currently,
//! we achieve this effect via function inlining" (§6).
//!
//! The inliner is deliberately conservative, matching what structured
//! SIMPLE can express without `goto`:
//!
//! * only *local* calls are inlined — calls placed `@OWNER_OF(p)` /
//!   `@node` express computation migration and must keep their call;
//! * the callee must be non-recursive, contain **no** `return` except as
//!   the final statement of its body, declare no `shared` variables, and
//!   fit the size budget;
//! * cloned pointer variables are downgraded to
//!   [`Locality::MaybeRemote`](earth_ir::Locality) — a `local` qualifier
//!   on a callee parameter is a contract with its call sites that no
//!   longer holds after splicing (re-run
//!   [`earth_analysis::infer_locality`] to recover provable locality).

use earth_ir::{
    Basic, FuncId, Function, Label, Locality, Operand, Place, Program, Rvalue, Stmt, StmtKind,
    VarDecl, VarId,
};
use std::collections::{HashMap, HashSet};

/// Inliner configuration.
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Maximum number of basic statements in an inlinable callee.
    pub max_callee_stmts: usize,
    /// Maximum number of inlining passes (each pass inlines calls
    /// introduced by the previous one).
    pub max_rounds: usize,
    /// Maximum number of basic statements a caller may grow to.
    pub max_caller_stmts: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_stmts: 24,
            max_rounds: 2,
            max_caller_stmts: 1500,
        }
    }
}

/// What the inliner did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InlineReport {
    /// Number of call sites replaced by callee bodies.
    pub inlined_calls: usize,
}

/// Runs local function inlining over the whole program.
///
/// # Examples
///
/// ```
/// use earth_commopt::{inline_functions, InlineConfig};
///
/// let mut prog = earth_frontend::compile(r#"
///     struct P { double x; };
///     double twice(double v) { return v + v; }
///     double f(P *p) { return twice(p->x); }
/// "#).unwrap();
/// let report = inline_functions(&mut prog, &InlineConfig::default());
/// assert_eq!(report.inlined_calls, 1);
/// ```
pub fn inline_functions(prog: &mut Program, cfg: &InlineConfig) -> InlineReport {
    let mut report = InlineReport::default();
    for _ in 0..cfg.max_rounds {
        let inlinable = inlinable_set(prog, cfg);
        if inlinable.is_empty() {
            break;
        }
        let mut any = false;
        let fids: Vec<FuncId> = prog.iter_functions().map(|(id, _)| id).collect();
        for fid in fids {
            let caller_size = prog.function(fid).basic_stmts().len();
            if caller_size > cfg.max_caller_stmts {
                continue;
            }
            let mut func = prog.function(fid).clone();
            let n = inline_in_function(prog, &mut func, fid, &inlinable);
            if n > 0 {
                report.inlined_calls += n;
                any = true;
                prog.replace_function(fid, func);
            }
        }
        if !any {
            break;
        }
    }
    earth_ir::validate_program(prog).expect("inliner produced invalid IR");
    report
}

/// Functions that may be inlined: small, single-tail-return, no shared
/// variables, not (mutually) recursive.
fn inlinable_set(prog: &Program, cfg: &InlineConfig) -> HashSet<FuncId> {
    // Call graph for recursion detection.
    let n = prog.functions().len();
    let mut callees: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (id, f) in prog.iter_functions() {
        f.body.walk(&mut |s| {
            if let StmtKind::Basic(Basic::Call { func, .. }) = &s.kind {
                callees[id.index()].insert(func.index());
            }
        });
    }
    let reaches_self = |start: usize| -> bool {
        let mut seen = HashSet::new();
        let mut stack: Vec<usize> = callees[start].iter().copied().collect();
        while let Some(x) = stack.pop() {
            if x == start {
                return true;
            }
            if seen.insert(x) {
                stack.extend(callees[x].iter().copied());
            }
        }
        false
    };

    prog.iter_functions()
        .filter(|(id, f)| {
            f.basic_stmts().len() <= cfg.max_callee_stmts
                && !reaches_self(id.index())
                && f.iter_vars().all(|(_, d)| !d.shared)
                && returns_only_at_tail(&f.body)
        })
        .map(|(id, _)| id)
        .collect()
}

/// Whether the only `return` in the body is its final top-level statement.
fn returns_only_at_tail(body: &Stmt) -> bool {
    let StmtKind::Seq(ss) = &body.kind else {
        return false;
    };
    let mut returns = 0usize;
    let mut tail_return = false;
    body.walk(&mut |s| {
        if matches!(s.kind, StmtKind::Basic(Basic::Return(_))) {
            returns += 1;
        }
    });
    if let Some(last) = ss.last() {
        tail_return = matches!(last.kind, StmtKind::Basic(Basic::Return(_)));
    }
    match returns {
        0 => true,
        1 => tail_return,
        _ => false,
    }
}

/// Inlines eligible calls within `func`; returns the number of call sites
/// replaced.
fn inline_in_function(
    prog: &Program,
    func: &mut Function,
    self_id: FuncId,
    inlinable: &HashSet<FuncId>,
) -> usize {
    let body = std::mem::replace(
        &mut func.body,
        Stmt {
            label: Label(0),
            kind: StmtKind::Seq(Vec::new()),
        },
    );
    let mut count = 0;
    let new_body = rewrite(prog, func, self_id, inlinable, body, &mut count);
    func.body = new_body;
    func.sync_label_counter();
    count
}

fn rewrite(
    prog: &Program,
    func: &mut Function,
    self_id: FuncId,
    inlinable: &HashSet<FuncId>,
    s: Stmt,
    count: &mut usize,
) -> Stmt {
    let label = s.label;
    let kind = match s.kind {
        StmtKind::Seq(children) => {
            let mut out = Vec::with_capacity(children.len());
            for child in children {
                // An inlinable local call expands in place.
                if let StmtKind::Basic(Basic::Call {
                    dst,
                    func: callee,
                    args,
                    at: None,
                }) = &child.kind
                {
                    if *callee != self_id && inlinable.contains(callee) {
                        *count += 1;
                        splice_call(prog, func, *callee, *dst, args, &mut out);
                        continue;
                    }
                }
                out.push(rewrite(prog, func, self_id, inlinable, child, count));
            }
            StmtKind::Seq(out)
        }
        StmtKind::ParSeq(children) => StmtKind::ParSeq(
            children
                .into_iter()
                .map(|c| rewrite(prog, func, self_id, inlinable, c, count))
                .collect(),
        ),
        StmtKind::Basic(b) => StmtKind::Basic(b),
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => StmtKind::If {
            cond,
            then_s: Box::new(rewrite(prog, func, self_id, inlinable, *then_s, count)),
            else_s: Box::new(rewrite(prog, func, self_id, inlinable, *else_s, count)),
        },
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => StmtKind::Switch {
            scrut,
            cases: cases
                .into_iter()
                .map(|(v, c)| (v, rewrite(prog, func, self_id, inlinable, c, count)))
                .collect(),
            default: Box::new(rewrite(prog, func, self_id, inlinable, *default, count)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond,
            body: Box::new(rewrite(prog, func, self_id, inlinable, *body, count)),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: Box::new(rewrite(prog, func, self_id, inlinable, *body, count)),
            cond,
        },
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => StmtKind::Forall {
            init,
            cond,
            step,
            body: Box::new(rewrite(prog, func, self_id, inlinable, *body, count)),
        },
    };
    Stmt { label, kind }
}

/// Expands one call: argument copies, the renamed callee body, and the
/// return-value assignment.
fn splice_call(
    prog: &Program,
    func: &mut Function,
    callee_id: FuncId,
    dst: Option<VarId>,
    args: &[Operand],
    out: &mut Vec<Stmt>,
) {
    let callee = prog.function(callee_id);

    // Fresh caller variables for every callee variable. Pointer locality
    // is downgraded: the callee's `local` contracts do not survive
    // splicing into an arbitrary call site.
    let mut var_map: HashMap<VarId, VarId> = HashMap::new();
    for (v, d) in callee.iter_vars() {
        let mut decl = VarDecl {
            name: format!("inl_{}_{}", callee.name, d.name),
            ..d.clone()
        };
        if decl.ty.is_ptr() {
            decl.locality = Locality::MaybeRemote;
        }
        var_map.insert(v, func.add_var(decl));
    }

    // Parameter binding.
    for (&p, &a) in callee.params.iter().zip(args) {
        let l = func.fresh_label();
        out.push(Stmt {
            label: l,
            kind: StmtKind::Basic(Basic::Assign {
                dst: Place::Var(var_map[&p]),
                src: Rvalue::Use(a),
            }),
        });
    }

    // Body: strip the tail return, splice the rest renamed.
    let StmtKind::Seq(body) = &callee.body.kind else {
        unreachable!("function bodies are sequences");
    };
    let (tail_ret, rest): (Option<&Stmt>, &[Stmt]) = match body.split_last() {
        Some((last, rest)) if matches!(last.kind, StmtKind::Basic(Basic::Return(_))) => {
            (Some(last), rest)
        }
        _ => (None, body.as_slice()),
    };
    for stmt in rest {
        out.push(clone_renamed(func, stmt, &var_map));
    }
    if let (Some(d), Some(ret)) = (dst, tail_ret) {
        if let StmtKind::Basic(Basic::Return(Some(op))) = &ret.kind {
            let l = func.fresh_label();
            out.push(Stmt {
                label: l,
                kind: StmtKind::Basic(Basic::Assign {
                    dst: Place::Var(d),
                    src: Rvalue::Use(rename_operand(*op, &var_map)),
                }),
            });
        }
    }
}

fn rename_var(v: VarId, map: &HashMap<VarId, VarId>) -> VarId {
    map[&v]
}

fn rename_operand(o: Operand, map: &HashMap<VarId, VarId>) -> Operand {
    match o {
        Operand::Var(v) => Operand::Var(rename_var(v, map)),
        c => c,
    }
}

fn clone_renamed(func: &mut Function, s: &Stmt, map: &HashMap<VarId, VarId>) -> Stmt {
    use earth_ir::{AtTarget, Cond, MemRef};
    let rn_mem = |m: MemRef| match m {
        MemRef::Deref { base, field } => MemRef::Deref {
            base: rename_var(base, map),
            field,
        },
        MemRef::Field { base, field } => MemRef::Field {
            base: rename_var(base, map),
            field,
        },
    };
    let rn_cond =
        |c: &Cond| Cond::new(c.op, rename_operand(c.lhs, map), rename_operand(c.rhs, map));
    let label = func.fresh_label();
    let kind = match &s.kind {
        StmtKind::Seq(ss) => {
            StmtKind::Seq(ss.iter().map(|c| clone_renamed(func, c, map)).collect())
        }
        StmtKind::ParSeq(ss) => {
            StmtKind::ParSeq(ss.iter().map(|c| clone_renamed(func, c, map)).collect())
        }
        StmtKind::Basic(b) => {
            let nb = match b {
                Basic::Assign { dst, src } => Basic::Assign {
                    dst: match dst {
                        Place::Var(v) => Place::Var(rename_var(*v, map)),
                        Place::Mem(m) => Place::Mem(rn_mem(*m)),
                    },
                    src: match src {
                        Rvalue::Use(o) => Rvalue::Use(rename_operand(*o, map)),
                        Rvalue::Unary(op, a) => Rvalue::Unary(*op, rename_operand(*a, map)),
                        Rvalue::Binary(op, a, b) => {
                            Rvalue::Binary(*op, rename_operand(*a, map), rename_operand(*b, map))
                        }
                        Rvalue::Load(m) => Rvalue::Load(rn_mem(*m)),
                        Rvalue::Malloc { struct_id, on } => Rvalue::Malloc {
                            struct_id: *struct_id,
                            on: on.map(|o| rename_operand(o, map)),
                        },
                        Rvalue::Builtin { builtin, args } => Rvalue::Builtin {
                            builtin: *builtin,
                            args: args.iter().map(|a| rename_operand(*a, map)).collect(),
                        },
                        Rvalue::ValueOf(v) => Rvalue::ValueOf(rename_var(*v, map)),
                    },
                },
                Basic::Call {
                    dst,
                    func: f2,
                    args,
                    at,
                } => Basic::Call {
                    dst: dst.map(|d| rename_var(d, map)),
                    func: *f2,
                    args: args.iter().map(|a| rename_operand(*a, map)).collect(),
                    at: at.as_ref().map(|t| match t {
                        AtTarget::OwnerOf(v) => AtTarget::OwnerOf(rename_var(*v, map)),
                        AtTarget::Node(o) => AtTarget::Node(rename_operand(*o, map)),
                    }),
                },
                Basic::Return(o) => Basic::Return(o.map(|o| rename_operand(o, map))),
                Basic::BlkMov {
                    dir,
                    ptr,
                    buf,
                    range,
                } => Basic::BlkMov {
                    dir: *dir,
                    ptr: rename_var(*ptr, map),
                    buf: rename_var(*buf, map),
                    range: *range,
                },
                Basic::AtomicWrite { var, value } => Basic::AtomicWrite {
                    var: rename_var(*var, map),
                    value: rename_operand(*value, map),
                },
                Basic::AtomicAdd { var, value } => Basic::AtomicAdd {
                    var: rename_var(*var, map),
                    value: rename_operand(*value, map),
                },
            };
            StmtKind::Basic(nb)
        }
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => StmtKind::If {
            cond: rn_cond(cond),
            then_s: Box::new(clone_renamed(func, then_s, map)),
            else_s: Box::new(clone_renamed(func, else_s, map)),
        },
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => StmtKind::Switch {
            scrut: rename_operand(*scrut, map),
            cases: cases
                .iter()
                .map(|(v, c)| (*v, clone_renamed(func, c, map)))
                .collect(),
            default: Box::new(clone_renamed(func, default, map)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rn_cond(cond),
            body: Box::new(clone_renamed(func, body, map)),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: Box::new(clone_renamed(func, body, map)),
            cond: rn_cond(cond),
        },
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => StmtKind::Forall {
            init: Box::new(clone_renamed(func, init, map)),
            cond: rn_cond(cond),
            step: Box::new(clone_renamed(func, step, map)),
            body: Box::new(clone_renamed(func, body, map)),
        },
    };
    Stmt { label, kind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    const SRC: &str = r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        double use_it(Point *p, double k) {
            double a;
            double b;
            a = scale(p->x, k);
            b = scale(p->y, k);
            return a + b;
        }
    "#;

    #[test]
    fn inlines_small_leaf_function() {
        let mut prog = compile(SRC).unwrap();
        let report = inline_functions(&mut prog, &InlineConfig::default());
        assert_eq!(report.inlined_calls, 2);
        let f = prog.function(prog.function_by_name("use_it").unwrap());
        let calls = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| matches!(b, Basic::Call { .. }))
            .count();
        assert_eq!(calls, 0, "both calls should be gone");
        // The inlined multiplications exist under renamed variables.
        assert!(f.var_by_name("inl_scale_v").is_some());
    }

    #[test]
    fn recursion_is_not_inlined() {
        let mut prog = compile(
            r#"
            struct S { int x; };
            int fact(int n) {
                if (n < 2) { return 1; }
                return n * fact(n - 1);
            }
            int main() { return fact(5); }
        "#,
        )
        .unwrap();
        let report = inline_functions(&mut prog, &InlineConfig::default());
        assert_eq!(report.inlined_calls, 0);
    }

    #[test]
    fn owner_of_calls_are_preserved() {
        let mut prog = compile(
            r#"
            struct S { int x; };
            int peek(S local *p) { return p->x; }
            int main() {
                S *p;
                p = malloc_on(1, sizeof(S));
                p->x = 4;
                return peek(p) @ OWNER_OF(p);
            }
        "#,
        )
        .unwrap();
        let report = inline_functions(&mut prog, &InlineConfig::default());
        assert_eq!(report.inlined_calls, 0, "@OWNER_OF expresses migration");
    }

    #[test]
    fn early_returns_block_inlining() {
        let mut prog = compile(
            r#"
            struct S { S* next; int x; };
            int first_or_zero(S *p) {
                if (p == NULL) { return 0; }
                return p->x;
            }
            int main() {
                S *p;
                p = malloc(sizeof(S));
                p->x = 3;
                return first_or_zero(p);
            }
        "#,
        )
        .unwrap();
        let report = inline_functions(&mut prog, &InlineConfig::default());
        assert_eq!(report.inlined_calls, 0);
    }

    // End-to-end semantic preservation is checked in the root crate's
    // `tests/pipeline.rs` (the simulator is not a dependency here).

    #[test]
    fn inlining_enables_interprocedural_placement() {
        // The paper's §6 remark: with `scale` inlined, the optimizer can
        // block the whole read/compute/write pattern of `scale_point`.
        let src = r#"
            struct Point { double x; double y; };
            double scale(double v, double k) { return v * k; }
            void scale_point(Point *p, double k) {
                p->x = scale(p->x, k);
                p->y = scale(p->y, k);
            }
        "#;
        let mut prog = compile(src).unwrap();
        inline_functions(&mut prog, &InlineConfig::default());
        let report = crate::optimize_program(&mut prog, &crate::CommOptConfig::default());
        // Blocking still fires after inlining, without the call boundary.
        assert_eq!(report.total().blocked_spans, 1);
        let f = prog.function(prog.function_by_name("scale_point").unwrap());
        let calls = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| matches!(b, Basic::Call { .. }))
            .count();
        assert_eq!(calls, 0);
    }
}
