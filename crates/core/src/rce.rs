//! Remote communication expressions — the paper's `(p, f, n, Dlist)` tuples.

use earth_ir::{FieldId, Label, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// A remote communication expression: field `field` of the object pointed
/// to by `base`, with an estimated dynamic frequency and the set of basic
/// statement labels (`Dlist`) whose accesses it covers.
///
/// For write tuples, `value_vars` records the variables holding the values
/// to be written; a tuple is killed when one of them is overwritten (the
/// paper keeps the original right-hand-side variables live by construction;
/// we track them explicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Rce {
    /// The pointer variable.
    pub base: VarId,
    /// The accessed field.
    pub field: FieldId,
    /// Estimated execution frequency (`n` in the paper): multiplied by the
    /// loop factor when hoisted out of loops, divided by the number of
    /// alternatives when hoisted out of conditionals.
    pub freq: f64,
    /// Labels of the original remote accesses this tuple covers.
    pub labels: BTreeSet<Label>,
    /// For write tuples: variables holding values to be written.
    pub value_vars: BTreeSet<VarId>,
    /// Whether the tuple crossed a conditional or loop boundary during
    /// propagation (placing it earlier may introduce a speculative
    /// dereference; see the paper's footnote 2).
    pub speculative: bool,
}

impl Rce {
    /// Creates a read tuple for a single access.
    pub fn read(base: VarId, field: FieldId, label: Label) -> Self {
        Rce {
            base,
            field,
            freq: 1.0,
            labels: [label].into(),
            value_vars: BTreeSet::new(),
            speculative: false,
        }
    }

    /// Creates a write tuple for a single access.
    pub fn write(base: VarId, field: FieldId, label: Label, value: Option<VarId>) -> Self {
        Rce {
            value_vars: value.into_iter().collect(),
            ..Rce::read(base, field, label)
        }
    }

    /// The `(base, field)` location key.
    pub fn key(&self) -> (VarId, FieldId) {
        (self.base, self.field)
    }
}

impl fmt::Display for Rce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.labels.iter().map(|l| l.to_string()).collect();
        write!(
            f,
            "({}~>{}, {}, {{{}}})",
            self.base,
            self.field,
            self.freq,
            labels.join(",")
        )
    }
}

/// A set of [`Rce`] tuples, at most one per `(base, field)` key; adding a
/// tuple with an existing key merges frequencies (sum) and label sets
/// (union), as the paper's `addToSet` does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSet {
    items: Vec<Rce>,
}

impl CommSet {
    /// The empty set.
    pub fn new() -> Self {
        CommSet::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Rce> {
        self.items.iter()
    }

    /// Looks up the tuple for `(base, field)`.
    pub fn get(&self, base: VarId, field: FieldId) -> Option<&Rce> {
        self.items.iter().find(|r| r.key() == (base, field))
    }

    /// Adds a tuple, merging with an existing tuple for the same location.
    pub fn add(&mut self, rce: Rce) {
        if let Some(existing) = self.items.iter_mut().find(|r| r.key() == rce.key()) {
            existing.freq += rce.freq;
            existing.labels.extend(rce.labels.iter().copied());
            existing.value_vars.extend(rce.value_vars.iter().copied());
            existing.speculative |= rce.speculative;
        } else {
            self.items.push(rce);
        }
    }

    /// Removes and returns all tuples (used when draining survivors).
    pub fn into_items(self) -> Vec<Rce> {
        self.items
    }

    /// Retains only tuples satisfying the predicate.
    pub fn retain(&mut self, f: impl FnMut(&Rce) -> bool) {
        self.items.retain(f);
    }
}

impl FromIterator<Rce> for CommSet {
    fn from_iter<T: IntoIterator<Item = Rce>>(iter: T) -> Self {
        let mut s = CommSet::new();
        for r in iter {
            s.add(r);
        }
        s
    }
}

impl Extend<Rce> for CommSet {
    fn extend<T: IntoIterator<Item = Rce>>(&mut self, iter: T) {
        for r in iter {
            self.add(r);
        }
    }
}

impl fmt::Display for CommSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.items.iter().map(|r| r.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }
    fn fl(n: u32) -> FieldId {
        FieldId(n)
    }
    fn l(n: u32) -> Label {
        Label(n)
    }

    #[test]
    fn add_merges_same_location() {
        let mut s = CommSet::new();
        s.add(Rce::read(v(1), fl(0), l(10)));
        s.add(Rce::read(v(1), fl(0), l(20)));
        assert_eq!(s.len(), 1);
        let r = s.get(v(1), fl(0)).unwrap();
        assert_eq!(r.freq, 2.0);
        assert_eq!(r.labels.len(), 2);
    }

    #[test]
    fn distinct_locations_stay_separate() {
        let mut s = CommSet::new();
        s.add(Rce::read(v(1), fl(0), l(10)));
        s.add(Rce::read(v(1), fl(1), l(11)));
        s.add(Rce::read(v(2), fl(0), l(12)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn write_tuples_track_value_vars() {
        let mut s = CommSet::new();
        s.add(Rce::write(v(1), fl(0), l(10), Some(v(5))));
        s.add(Rce::write(v(1), fl(0), l(11), Some(v(6))));
        let r = s.get(v(1), fl(0)).unwrap();
        assert!(r.value_vars.contains(&v(5)));
        assert!(r.value_vars.contains(&v(6)));
    }

    #[test]
    fn speculative_is_sticky() {
        let mut s = CommSet::new();
        s.add(Rce::read(v(1), fl(0), l(10)));
        s.add(Rce {
            speculative: true,
            ..Rce::read(v(1), fl(0), l(11))
        });
        assert!(s.get(v(1), fl(0)).unwrap().speculative);
    }

    #[test]
    fn display_is_readable() {
        let r = Rce::read(v(1), fl(2), l(7));
        assert_eq!(r.to_string(), "(v1~>field#2, 1, {S7})");
    }
}
