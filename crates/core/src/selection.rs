//! Communication selection (the paper's §4.2).
//!
//! Consumes the possible-placement sets and produces a transformation
//! [`Plan`]:
//!
//! 1. **Blocking** — for each pointer `p`, maximal *spans* of statements in
//!    one statement sequence where `*p` is accessed only directly through
//!    `p` (no aliased or callee accesses, `p` not redefined) are found. If
//!    the cost model favours it, the whole struct is fetched into a local
//!    buffer (`bcomm`) with one `blkmov`, every direct access in the span is
//!    rewritten to a local buffer access, and — if the span contains writes
//!    — a single `blkmov` writes the buffer back at the end of the span.
//!    This subsumes the paper's RemoteFill mechanism: the up-front
//!    whole-struct read guarantees every field is filled before the blocked
//!    write-back, and rewriting *all* direct accesses (reads and writes)
//!    preserves read-after-write semantics inside the span.
//! 2. **Pipelined reads + redundancy elimination** — a top-down traversal
//!    with a hash table of already-issued operations (keyed by original
//!    access label, exactly as in the paper): at the earliest program point
//!    where a read tuple is placeable with frequency ≥ 1, a split-phase
//!    read into a `comm` temporary is inserted and every covered original
//!    access is rewritten to use the temporary.
//!
//! Remote writes are only moved when it enables blocking (the paper's
//! policy: "for remote writes, the communication is delayed if this
//! enables blocked communication").

use crate::config::CommOptConfig;
use crate::motion::{Motion, MotionKind, MotionLog, ProbJustification};
use crate::placement::Placement;
use earth_analysis::{AccessKind, FunctionAnalysis, ProbFacts};
use earth_ir::{
    Basic, BlkDir, FieldId, Function, Label, MemRef, Place, Program, Rvalue, Stmt, StmtKind, Ty,
    VarDecl, VarId, VarOrigin,
};
use earth_profile::FuncProfile;
use std::collections::{BTreeSet, HashMap, HashSet};

/// How a single original remote access is rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replace {
    /// `dst = p~>f` becomes `dst = temp` (the read was issued earlier).
    ReadToTemp(VarId),
    /// `dst = p~>f` becomes `dst = buf.f` (covered by a block move).
    ReadToBuf(VarId),
    /// `p~>f = v` becomes `buf.f = v` (flushed by a block write-back).
    WriteToBuf(VarId),
}

/// Counters describing what selection decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Number of blocked spans (each contributes one `blkmov` read).
    pub blocked_spans: usize,
    /// Number of blocked spans that also write back.
    pub blocked_writebacks: usize,
    /// Number of pipelined `comm = p~>f` reads inserted.
    pub pipelined_reads: usize,
    /// Number of original read statements rewritten (to temps or buffers).
    pub reads_rewritten: usize,
    /// Number of original write statements rewritten to buffer stores.
    pub writes_rewritten: usize,
    /// Number of blocking decisions where the measured profile reversed
    /// the static cost-model choice (profile-guided runs only).
    pub pgo_flips: usize,
    /// Number of blocked spans unlocked by the pointer-induction cost
    /// relaxation (prob-alias mode only): spans the static threshold would
    /// have left pipelined.
    pub induction_blocks: usize,
}

/// The output of communication selection: edits for the transformer.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// New basic statements to insert just before the given statement.
    pub inserts_before: HashMap<Label, Vec<Basic>>,
    /// New basic statements to insert just after the given statement.
    pub inserts_after: HashMap<Label, Vec<Basic>>,
    /// Rewrites of original remote accesses.
    pub replace: HashMap<Label, Replace>,
    /// Summary counters.
    pub stats: SelectionStats,
    /// Record of every motion, for the translation validator and debugging.
    pub motion: MotionLog,
}

/// Runs communication selection for `func` (which must belong to `prog`),
/// adding communication temporaries and block buffers to `func` and
/// returning the edit plan.
pub fn select(
    prog: &Program,
    func: &mut Function,
    fa: &FunctionAnalysis,
    placement: &Placement,
    cfg: &CommOptConfig,
) -> Plan {
    select_profiled(prog, func, fa, placement, cfg, None)
}

/// [`select`] with an optional measured profile. When the profiled run
/// covered this function, blocking uses
/// [`should_block_profiled`](CommOptConfig::should_block_profiled) over the
/// span's measured execution count instead of the static threshold gate,
/// and [`SelectionStats::pgo_flips`] counts the decisions that changed.
pub fn select_profiled(
    prog: &Program,
    func: &mut Function,
    fa: &FunctionAnalysis,
    placement: &Placement,
    cfg: &CommOptConfig,
    profile: Option<&FuncProfile>,
) -> Plan {
    select_with(prog, func, fa, placement, cfg, profile, None)
}

/// [`select_profiled`] with optional probability annotations
/// (`--alias prob`). The facts change exactly one decision class: a span
/// whose pointer is a recognized loop induction (`p = p->f` once per
/// iteration) is decided by
/// [`should_block_induction`](CommOptConfig::should_block_induction) —
/// the cost model discounted by the loop's continue probability — instead
/// of the static threshold gate, and such motions carry a
/// [`ProbJustification`] that the `earth-lint` validator independently
/// re-derives. Span *safety* (conflict checks, terminal detection) is
/// identical in both modes.
pub fn select_with(
    prog: &Program,
    func: &mut Function,
    fa: &FunctionAnalysis,
    placement: &Placement,
    cfg: &CommOptConfig,
    profile: Option<&FuncProfile>,
    facts: Option<&ProbFacts>,
) -> Plan {
    let mut sel = Selector {
        prog,
        fa,
        cfg,
        // Feedback only applies where the profiling run reached: a
        // function with no matched sites falls back to the static model.
        profile: profile.filter(|v| v.matched() > 0),
        facts,
        plan: Plan::default(),
        covered: HashSet::new(),
        comm_counter: 0,
        buf_counter: 0,
    };
    if cfg.enable_blocking {
        let body = func.body.clone();
        sel.block_spans(func, placement, &body, None);
    }
    if cfg.enable_motion || cfg.enable_redundancy_elim {
        let body = func.body.clone();
        sel.pipelined_reads(func, placement, &body);
    }
    sel.plan
}

struct Selector<'a> {
    prog: &'a Program,
    fa: &'a FunctionAnalysis,
    cfg: &'a CommOptConfig,
    profile: Option<&'a FuncProfile>,
    facts: Option<&'a ProbFacts>,
    plan: Plan,
    /// Labels of original accesses already rewritten.
    covered: HashSet<Label>,
    comm_counter: u32,
    buf_counter: u32,
}

/// A direct remote access via one pointer found inside a span.
#[derive(Debug, Clone, Copy)]
struct SpanAccess {
    label: Label,
    field: FieldId,
    is_write: bool,
}

impl Selector<'_> {
    // ====================== Phase A: blocking ======================

    /// Recursively processes every statement sequence, detecting blockable
    /// spans among its children. `enclosing_loop` is the label of the
    /// innermost `while`/`do-while` the sequence sits in — the scope in
    /// which a pointer-induction fact can justify the blocking relaxation.
    fn block_spans(
        &mut self,
        func: &mut Function,
        placement: &Placement,
        s: &Stmt,
        enclosing_loop: Option<Label>,
    ) {
        if let StmtKind::Seq(children) = &s.kind {
            self.block_spans_in_seq(func, placement, children, enclosing_loop);
        }
        match &s.kind {
            StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
                for c in ss {
                    self.block_spans(func, placement, c, enclosing_loop);
                }
            }
            StmtKind::Basic(_) => {}
            StmtKind::If { then_s, else_s, .. } => {
                self.block_spans(func, placement, then_s, enclosing_loop);
                self.block_spans(func, placement, else_s, enclosing_loop);
            }
            StmtKind::Switch { cases, default, .. } => {
                for (_, cs) in cases {
                    self.block_spans(func, placement, cs, enclosing_loop);
                }
                self.block_spans(func, placement, default, enclosing_loop);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                self.block_spans(func, placement, body, Some(s.label))
            }
            StmtKind::Forall { body, .. } => self.block_spans(func, placement, body, None),
        }
    }

    /// The induction justification available for a span on pointer `p`
    /// inside `enclosing_loop`, if the prob-alias facts recognized one.
    fn induction_for(&self, p: VarId, enclosing_loop: Option<Label>) -> Option<ProbJustification> {
        let facts = self.facts?;
        let loop_label = enclosing_loop?;
        let ind = facts.induction_at(loop_label, p)?;
        Some(ProbJustification {
            loop_label,
            advance_label: ind.advance_label,
            field: ind.field,
            prob: facts.branch_prob(loop_label)?,
        })
    }

    fn block_spans_in_seq(
        &mut self,
        func: &mut Function,
        placement: &Placement,
        children: &[Stmt],
        enclosing_loop: Option<Label>,
    ) {
        // Candidate pointers: bases of direct remote derefs in the children,
        // in order of first appearance.
        let mut candidates: Vec<VarId> = Vec::new();
        for c in children {
            for h in self
                .fa
                .rw
                .get(c.label)
                .heap_reads
                .iter()
                .chain(self.fa.rw.get(c.label).heap_writes.iter())
            {
                if h.direct && func.deref_is_remote(h.base) && !candidates.contains(&h.base) {
                    candidates.push(h.base);
                }
            }
        }
        for p in candidates {
            let mut k = 0;
            while k < children.len() {
                match self.try_span(func, placement, children, p, k, enclosing_loop) {
                    Some(next_k) => k = next_k,
                    None => break,
                }
            }
        }
    }

    /// Attempts to build one blocked span for pointer `p` starting at or
    /// after child index `from`. Returns the index to continue scanning
    /// from, or `None` when no further direct access to `p` exists.
    fn try_span(
        &mut self,
        func: &mut Function,
        placement: &Placement,
        children: &[Stmt],
        p: VarId,
        from: usize,
        enclosing_loop: Option<Label>,
    ) -> Option<usize> {
        // Find the first child with an unclaimed direct access via p.
        let start = (from..children.len()).find(|&i| {
            self.has_unclaimed_direct_access(&children[i], p)
                && self.child_compatible(&children[i], p) != Compat::Conflict
        })?;

        // Extend the span.
        let mut end = start;
        let mut terminal: Option<usize> = None;
        #[allow(clippy::needless_range_loop)] // indices name span bounds
        for k in start..children.len() {
            match self.child_compatible(&children[k], p) {
                Compat::Conflict => break,
                Compat::Terminal => {
                    // A basic statement that both uses and redefines p
                    // (e.g. `p = p~>next`): include it and stop.
                    if self.has_unclaimed_direct_access(&children[k], p) {
                        terminal = Some(k);
                    }
                    break;
                }
                Compat::Ok => {
                    if self.has_unclaimed_direct_access(&children[k], p) {
                        end = k;
                    }
                }
            }
        }

        // Collect the accesses inside [start, end] + terminal.
        let mut accesses: Vec<SpanAccess> = Vec::new();
        for child in &children[start..=end] {
            self.collect_direct_accesses(child, p, &mut accesses);
        }
        if let Some(t) = terminal {
            self.collect_direct_accesses(&children[t], p, &mut accesses);
        }
        accesses.retain(|a| !self.covered.contains(&a.label));

        let read_fields: BTreeSet<FieldId> = accesses
            .iter()
            .filter(|a| !a.is_write)
            .map(|a| a.field)
            .collect();
        let write_fields: BTreeSet<FieldId> = accesses
            .iter()
            .filter(|a| a.is_write)
            .map(|a| a.field)
            .collect();

        let continue_at = terminal.map(|t| t + 1).unwrap_or(end + 1);
        if accesses.is_empty() {
            return Some(continue_at);
        }

        let sid = func
            .var(p)
            .ty
            .struct_id()
            .expect("deref base is a struct pointer");
        let struct_words = self.prog.struct_def(sid).size_words();
        // Partial block moves (the paper's §7 extension): only the
        // contiguous field range covering all accessed fields needs to
        // cross the network. Field reordering (see `layout`) shrinks it.
        let lo_field = accesses.iter().map(|a| a.field.0).min().expect("non-empty");
        let hi_field = accesses.iter().map(|a| a.field.0).max().expect("non-empty");
        let range_words = (hi_field - lo_field + 1) as usize;
        let range = if range_words == struct_words {
            None
        } else {
            Some((lo_field, range_words as u32))
        };
        // A span that writes *every* transferred word before reading any
        // needs no up-front block read (RemoteFill is trivially satisfied).
        let full_init = read_fields.is_empty() && write_fields.len() == range_words;
        let static_choice = self.cfg.should_block_ex(
            read_fields.len(),
            write_fields.len(),
            range_words,
            full_init,
        );
        let mut justification = None;
        let block = match self.profile {
            Some(view) => {
                // The span executes as a unit; any inner conditional can
                // only lower individual access counts, so the hottest
                // access measures the span.
                let execs = accesses
                    .iter()
                    .map(|a| view.execs(a.label).unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                let measured = self.cfg.should_block_profiled(
                    read_fields.len(),
                    write_fields.len(),
                    range_words,
                    full_init,
                    execs,
                );
                if measured != static_choice {
                    self.plan.stats.pgo_flips += 1;
                }
                measured
            }
            None => {
                // Prob-alias mode: a span on the loop's induction pointer
                // provably executes once per surviving iteration, so the
                // static threshold gate yields to the probability-weighted
                // cost model. The relaxation only ever *adds* blocking —
                // a statically profitable span stays blocked regardless.
                let induction_choice = self.induction_for(p, enclosing_loop).and_then(|j| {
                    self.cfg
                        .should_block_induction(
                            read_fields.len(),
                            write_fields.len(),
                            range_words,
                            full_init,
                            j.prob,
                        )
                        .then_some(j)
                });
                if !static_choice {
                    if let Some(j) = induction_choice {
                        self.plan.stats.induction_blocks += 1;
                        justification = Some(j);
                    }
                }
                static_choice || justification.is_some()
            }
        };
        if !block {
            return Some(continue_at);
        }

        // A span with writes must not contain an early return (the
        // write-back would be skipped).
        let has_writes = !write_fields.is_empty();
        if has_writes {
            let span_children = &children[start..=terminal.unwrap_or(end)];
            let contains_return = span_children.iter().any(|c| {
                let mut found = false;
                c.walk(&mut |st| {
                    if matches!(st.kind, StmtKind::Basic(Basic::Return(_))) {
                        found = true;
                    }
                });
                found
            });
            if contains_return {
                return Some(continue_at);
            }
        }

        // The block read dereferences p at the span start; without
        // speculation support it must be guaranteed on all paths there
        // (the paper's footnote 2).
        if !self.cfg.speculative_remote_ok && !placement.deref_guaranteed(p, children[start].label)
        {
            return Some(continue_at);
        }

        // Choose the insertion anchor for the blkmov read: hoist upwards
        // past compatible predecessors to overlap communication with
        // computation.
        let mut anchor = start;
        while anchor > 0 {
            let prev = &children[anchor - 1];
            if self.fa.var_written(p, prev.label)
                || self
                    .fa
                    .heap_conflict(p, None, prev.label, AccessKind::Write)
            {
                break;
            }
            if !self.cfg.speculative_remote_ok && !placement.deref_guaranteed(p, prev.label) {
                break;
            }
            anchor -= 1;
        }

        // Allocate the buffer and record the edits.
        self.buf_counter += 1;
        let buf = func.add_var(VarDecl {
            origin: VarOrigin::BlockBuffer,
            ..VarDecl::new(format!("bcomm{}", self.buf_counter), Ty::Struct(sid))
        });
        if !full_init {
            self.plan
                .inserts_before
                .entry(children[anchor].label)
                .or_default()
                .push(Basic::BlkMov {
                    dir: BlkDir::RemoteToLocal,
                    ptr: p,
                    buf,
                    range,
                });
            self.plan.motion.push(Motion {
                base: p,
                base_name: func.var(p).name.clone(),
                field: None,
                from_labels: accesses.iter().map(|a| a.label).collect(),
                to_label: children[anchor].label,
                before: true,
                kind: MotionKind::BlockRead,
                reason: format!(
                    "blocked span of {} direct accesses ({} read / {} written fields, \
                     {range_words} words); read hoisted {} statement(s) above the span{}",
                    accesses.len(),
                    read_fields.len(),
                    write_fields.len(),
                    start - anchor,
                    if justification.is_some() {
                        "; cost gate relaxed by loop pointer induction"
                    } else {
                        ""
                    }
                ),
                justification: justification.clone(),
            });
        }
        self.plan.stats.blocked_spans += 1;

        for a in &accesses {
            let action = if a.is_write {
                self.plan.stats.writes_rewritten += 1;
                Replace::WriteToBuf(buf)
            } else {
                self.plan.stats.reads_rewritten += 1;
                Replace::ReadToBuf(buf)
            };
            self.plan.replace.insert(a.label, action);
            self.covered.insert(a.label);
        }

        if has_writes {
            self.plan.stats.blocked_writebacks += 1;
            let writeback = Basic::BlkMov {
                dir: BlkDir::LocalToRemote,
                ptr: p,
                buf,
                range,
            };
            let (wb_label, wb_before) = match terminal {
                // The terminal statement redefines p: flush before it.
                Some(t) => (children[t].label, true),
                None => (children[end].label, false),
            };
            self.plan.motion.push(Motion {
                base: p,
                base_name: func.var(p).name.clone(),
                field: None,
                from_labels: accesses
                    .iter()
                    .filter(|a| a.is_write)
                    .map(|a| a.label)
                    .collect(),
                to_label: wb_label,
                before: wb_before,
                kind: MotionKind::BlockWriteback,
                reason: if terminal.is_some() {
                    "buffered writes flushed before the span-terminal pointer advance".into()
                } else {
                    "buffered writes flushed after the last span statement".into()
                },
                justification: justification.clone(),
            });
            match terminal {
                Some(t) => self
                    .plan
                    .inserts_before
                    .entry(children[t].label)
                    .or_default()
                    .push(writeback),
                None => self
                    .plan
                    .inserts_after
                    .entry(children[end].label)
                    .or_default()
                    .push(writeback),
            }
        }

        Some(continue_at)
    }

    /// Does this child contain at least one direct remote access via `p`
    /// that has not been claimed by an earlier span?
    fn has_unclaimed_direct_access(&self, child: &Stmt, p: VarId) -> bool {
        let mut out = Vec::new();
        self.collect_direct_accesses(child, p, &mut out);
        out.iter().any(|a| !self.covered.contains(&a.label))
    }

    /// Collects all direct field-level remote accesses via `p` in the
    /// subtree of `child`.
    fn collect_direct_accesses(&self, child: &Stmt, p: VarId, out: &mut Vec<SpanAccess>) {
        child.walk(&mut |st| {
            if let StmtKind::Basic(Basic::Assign { dst, src }) = &st.kind {
                if let Place::Mem(MemRef::Deref { base, field }) = dst {
                    if *base == p {
                        out.push(SpanAccess {
                            label: st.label,
                            field: *field,
                            is_write: true,
                        });
                    }
                }
                if let Rvalue::Load(MemRef::Deref { base, field }) = src {
                    if *base == p {
                        out.push(SpanAccess {
                            label: st.label,
                            field: *field,
                            is_write: false,
                        });
                    }
                }
            }
        });
    }

    /// Classifies a child statement for span extension.
    fn child_compatible(&self, child: &Stmt, p: VarId) -> Compat {
        let rw = self.fa.rw.get(child.label);
        // Any access to p's region that is not a direct field access via p
        // itself is a conflict (aliased or callee access, or an existing
        // whole-struct blkmov).
        let aliased = rw.heap_reads.iter().chain(rw.heap_writes.iter()).any(|h| {
            self.fa.regions.connected(h.base, p) && !(h.base == p && h.direct && h.field.is_some())
        });
        if aliased {
            return Compat::Conflict;
        }
        if rw.vars_written.contains(&p) {
            // Only a basic statement that reads old p while redefining it
            // can serve as a span terminal.
            let is_terminal_basic = matches!(
                &child.kind,
                StmtKind::Basic(Basic::Assign {
                    dst: Place::Var(d),
                    src: Rvalue::Load(MemRef::Deref { base, .. }),
                }) if *d == p && *base == p
            );
            return if is_terminal_basic {
                Compat::Terminal
            } else {
                Compat::Conflict
            };
        }
        Compat::Ok
    }

    // ================ Phase B: pipelined reads ================

    /// Top-down traversal placing pipelined reads at their earliest point,
    /// with the hash table of already-issued operations.
    fn pipelined_reads(&mut self, func: &mut Function, placement: &Placement, s: &Stmt) {
        match &s.kind {
            StmtKind::Seq(ss) => {
                for child in ss {
                    self.consider_anchor(func, placement, child);
                    self.pipelined_reads(func, placement, child);
                }
            }
            StmtKind::ParSeq(ss) => {
                for child in ss {
                    self.pipelined_reads(func, placement, child);
                }
            }
            StmtKind::Basic(_) => {}
            StmtKind::If { then_s, else_s, .. } => {
                self.pipelined_reads(func, placement, then_s);
                self.pipelined_reads(func, placement, else_s);
            }
            StmtKind::Switch { cases, default, .. } => {
                for (_, cs) in cases {
                    self.pipelined_reads(func, placement, cs);
                }
                self.pipelined_reads(func, placement, default);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                self.pipelined_reads(func, placement, body)
            }
            StmtKind::Forall { body, .. } => self.pipelined_reads(func, placement, body),
        }
    }

    /// Examines the RemoteReads set just before `child` and selects
    /// candidates.
    fn consider_anchor(&mut self, func: &mut Function, placement: &Placement, child: &Stmt) {
        let Some(set) = placement.reads_before.get(&child.label) else {
            return;
        };
        // Issue in original program order (earliest covered access first):
        // the first access of a loop body is typically the loop-carried
        // pointer advance, and delaying its issue behind other reads would
        // lengthen the critical dependence chain.
        let mut tuples: Vec<_> = set.iter().cloned().collect();
        tuples.sort_by_key(|t| (t.labels.iter().min().copied(), t.base, t.field));
        // Labels inside the anchor statement: tuples covering one must be
        // issued before the anchor; tuples whose uses all come later are
        // issued just after it, so they never delay the anchor's own
        // (possibly remote, possibly chain-critical) issue.
        let subtree: HashSet<Label> = child.labels().into_iter().collect();
        for mut t in tuples {
            // Remove labels already covered by the hash table or by spans.
            t.labels.retain(|l| !self.covered.contains(l));
            if t.labels.is_empty() {
                continue;
            }
            if t.freq < self.cfg.freq.placement_threshold {
                continue;
            }
            if t.speculative
                && !self.cfg.speculative_remote_ok
                && !placement.deref_guaranteed(t.base, child.label)
            {
                // The paper's footnote 2: without runtime support for
                // speculative remote reads, a hoisted dereference needs a
                // guaranteed dereference on every path from here.
                continue;
            }
            if !self.cfg.enable_motion {
                // Redundancy elimination only: the read stays at its first
                // original site.
                if !t.labels.contains(&child.label) {
                    continue;
                }
            }
            if t.labels.len() == 1 && t.labels.contains(&child.label) {
                // Placing the read just before its only original site is
                // the identity transformation; leave the statement alone.
                continue;
            }
            if !self.cfg.enable_redundancy_elim && t.labels.len() > 1 {
                // Without redundancy elimination each access keeps its own
                // operation; restrict the tuple to the anchor's own access.
                if t.labels.contains(&child.label) {
                    t.labels = [child.label].into();
                } else {
                    continue;
                }
            }
            // Issue the read here.
            self.comm_counter += 1;
            let field_def = self
                .prog
                .struct_def(func.var(t.base).ty.struct_id().expect("pointer base"))
                .field(t.field);
            let field_ty = field_def.ty;
            let field_name = field_def.name.clone();
            let comm = func.add_var(VarDecl {
                origin: VarOrigin::CommTemp,
                ..VarDecl::new(format!("comm{}", self.comm_counter), field_ty)
            });
            let read = Basic::Assign {
                dst: Place::Var(comm),
                src: Rvalue::Load(MemRef::Deref {
                    base: t.base,
                    field: t.field,
                }),
            };
            let before = t.labels.iter().any(|l| subtree.contains(l));
            if before {
                self.plan
                    .inserts_before
                    .entry(child.label)
                    .or_default()
                    .push(read);
            } else {
                self.plan
                    .inserts_after
                    .entry(child.label)
                    .or_default()
                    .push(read);
            }
            self.plan.motion.push(Motion {
                base: t.base,
                base_name: func.var(t.base).name.clone(),
                field: Some(t.field),
                from_labels: t.labels.clone(),
                to_label: child.label,
                before,
                kind: if t.labels.len() > 1 {
                    MotionKind::RedundantReuse
                } else {
                    MotionKind::PipelinedRead
                },
                reason: format!(
                    "read of {}~>{} (freq {:.1}) placeable here, covering {} original access(es)",
                    func.var(t.base).name,
                    field_name,
                    t.freq,
                    t.labels.len()
                ),
                justification: None,
            });
            self.plan.stats.pipelined_reads += 1;
            for l in &t.labels {
                self.plan.replace.insert(*l, Replace::ReadToTemp(comm));
                self.covered.insert(*l);
                self.plan.stats.reads_rewritten += 1;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Compat {
    Ok,
    Terminal,
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommOptConfig;
    use crate::placement::analyze_placement;
    use earth_frontend::compile;

    fn plan_for(src: &str, func: &str, cfg: &CommOptConfig) -> (Plan, Function) {
        let prog = compile(src).unwrap();
        let analysis = earth_analysis::analyze(&prog);
        let fid = prog.function_by_name(func).unwrap();
        let mut f = prog.function(fid).clone();
        let placement = analyze_placement(&f, analysis.function(fid), &cfg.freq);
        let plan = select(&prog, &mut f, analysis.function(fid), &placement, cfg);
        (plan, f)
    }

    const SPAN_SRC: &str = r#"
        struct P { double a; double b; double c; };
        double f(P *p) {
            double x;
            double y;
            double z;
            x = p->a;
            y = p->b;
            z = p->c;
            return x + y + z;
        }
    "#;

    #[test]
    fn span_blocking_claims_all_access_labels() {
        let (plan, f) = plan_for(SPAN_SRC, "f", &CommOptConfig::default());
        assert_eq!(plan.stats.blocked_spans, 1);
        assert_eq!(plan.stats.reads_rewritten, 3);
        // All three loads replaced with buffer reads.
        let bufs = plan
            .replace
            .values()
            .filter(|r| matches!(r, Replace::ReadToBuf(_)))
            .count();
        assert_eq!(bufs, 3);
        // The buffer variable was added to the function.
        assert!(f.var_by_name("bcomm1").is_some());
    }

    #[test]
    fn blocking_disabled_falls_back_to_pipelining() {
        let cfg = CommOptConfig {
            enable_blocking: false,
            ..CommOptConfig::default()
        };
        let (plan, _f) = plan_for(SPAN_SRC, "f", &cfg);
        assert_eq!(plan.stats.blocked_spans, 0);
        // The first load already sits at the earliest point (identity
        // placements are skipped); the other two get comm temps there.
        assert_eq!(plan.stats.pipelined_reads, 2);
    }

    #[test]
    fn full_init_span_skips_the_block_read() {
        let src = r#"
            struct P { int a; int b; int c; };
            void init(P *p, int v) {
                p->a = v;
                p->b = v + 1;
                p->c = v + 2;
            }
        "#;
        let (plan, _f) = plan_for(src, "init", &CommOptConfig::default());
        assert_eq!(plan.stats.blocked_spans, 1);
        assert_eq!(plan.stats.blocked_writebacks, 1);
        // Only the write-back blkmov exists: one insert total.
        let total_inserts: usize = plan
            .inserts_before
            .values()
            .chain(plan.inserts_after.values())
            .map(|v| v.len())
            .sum();
        assert_eq!(total_inserts, 1, "{plan:?}");
    }

    #[test]
    fn partial_range_covers_only_accessed_cluster() {
        let src = r#"
            struct Wide { int a; int b; int c; int d; int e; int f; int g; int h; };
            int mid(Wide *w) {
                return w->c + w->d + w->e;
            }
        "#;
        let (plan, _f) = plan_for(src, "mid", &CommOptConfig::default());
        assert_eq!(plan.stats.blocked_spans, 1);
        let blk = plan
            .inserts_before
            .values()
            .flatten()
            .find_map(|b| match b {
                Basic::BlkMov { range, .. } => Some(*range),
                _ => None,
            })
            .expect("a block read");
        assert_eq!(blk, Some((2, 3)), "fields c..e");
    }

    #[test]
    fn aliased_access_splits_spans() {
        let src = r#"
            struct P { double a; double b; double c; };
            double f(P *p) {
                P *q;
                double x;
                double y;
                double z;
                q = p;
                x = p->a;
                q->b = 1.0;
                y = p->b;
                z = p->c;
                return x + y + z;
            }
        "#;
        let (plan, _f) = plan_for(src, "f", &CommOptConfig::default());
        // The aliased write via q prevents one big span over all of p's
        // accesses; at most the trailing reads could block (2 fields:
        // below threshold), so no spans at all.
        assert_eq!(plan.stats.blocked_spans, 0, "{plan:?}");
    }
}
