//! Configuration of the communication optimizer.

use earth_profile::ProfileDb;
use std::sync::Arc;

/// The frequency-adjustment model of the possible-placement analysis
/// (the paper's `adjustFrequency`, Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct FreqModel {
    /// Factor applied when a tuple moves out of a loop ("corresponding to
    /// the expected number of times the loop will execute"); the paper
    /// uses 10.
    pub loop_factor: f64,
    /// Minimum frequency for a tuple to be selected for placement; the
    /// paper requires "1 or more".
    pub placement_threshold: f64,
}

impl Default for FreqModel {
    fn default() -> Self {
        FreqModel {
            loop_factor: 10.0,
            placement_threshold: 1.0,
        }
    }
}

/// Communication cost parameters, in nanoseconds, mirroring the paper's
/// Table I (EARTH-MANNA). Used by communication selection to choose between
/// pipelined scalar operations and blocked `blkmov` transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCostModel {
    /// Pipelined remote read of one word.
    pub read_pipelined_ns: f64,
    /// Pipelined remote write of one word.
    pub write_pipelined_ns: f64,
    /// Pipelined block move of one word (base cost of a `blkmov`).
    pub blkmov_pipelined_ns: f64,
    /// Additional streaming cost per extra word in a block move
    /// (8-byte word over the 50 MB/s MANNA link ⇒ 160 ns).
    pub blkmov_per_word_ns: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        CommCostModel {
            read_pipelined_ns: 1908.0,
            write_pipelined_ns: 1749.0,
            blkmov_pipelined_ns: 2602.0,
            blkmov_per_word_ns: 160.0,
        }
    }
}

impl CommCostModel {
    /// Cost of a block move of `words` words (pipelined issue).
    pub fn blkmov_cost(&self, words: usize) -> f64 {
        self.blkmov_pipelined_ns + self.blkmov_per_word_ns * words.saturating_sub(1) as f64
    }

    /// Cost of `reads` pipelined scalar reads plus `writes` pipelined
    /// scalar writes.
    pub fn pipelined_cost(&self, reads: usize, writes: usize) -> f64 {
        self.read_pipelined_ns * reads as f64 + self.write_pipelined_ns * writes as f64
    }
}

/// Which alias/frequency analysis feeds the placement cost model.
///
/// The *safety* rules (kill rules, span-conflict checks) are identical in
/// both modes — probabilities may only reweight cost decisions, an
/// invariant the `earth-lint` validator enforces (diagnostics
/// `ALP001`–`ALP003`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// The paper's binary may-alias facts and static frequency guesses.
    #[default]
    Binary,
    /// Probability-annotated facts (`earth_analysis::ptprob`): structural
    /// branch heuristics weight tuple frequencies, and recognized pointer
    /// inductions unlock a cost-only blocking relaxation in
    /// pointer-chasing loops.
    Prob,
}

/// Whether the whole-program escape & node-affinity analysis may upgrade
/// pointer locality — including *through loads*, the case locality
/// inference refuses — so placement drops the corresponding communication
/// tuples entirely.
///
/// Like [`AliasMode`], this only relaxes what the optimizer *does*; every
/// upgrade is recorded as an `EscapeJustification` in the `MotionLog` and
/// independently re-derived by `earth-lint` (diagnostics `ESC001`–`ESC003`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EscapeMode {
    /// No escape analysis: only declared/inferred `local` pointers compile
    /// to local accesses (the paper's pipeline).
    #[default]
    Off,
    /// Run `earth_analysis::escape` and apply its `NodeLocal` /
    /// `OwnerConfined` upgrades before placement.
    On,
}

/// Full optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CommOptConfig {
    /// Frequency model for placement analysis.
    pub freq: FreqModel,
    /// Cost model for pipelining-vs-blocking decisions.
    pub cost: CommCostModel,
    /// Minimum number of distinct remote words (reads + writes) accessed
    /// through one pointer for blocking to be considered; the paper used 3
    /// ("a block-move is better when three or more words can be moved
    /// together").
    pub block_threshold: usize,
    /// Maximum ratio of struct size to words actually needed for blocking
    /// to stay profitable (the paper: "if the structure being read is very
    /// large compared to the number of fields actually required, the
    /// tradeoff shifts towards pipelined communication"). Moving spurious
    /// words costs wire time *and* adds completion latency on dependent
    /// chains.
    pub spurious_ratio: f64,
    /// Whether the runtime tolerates remote reads of potentially-invalid
    /// addresses (the paper's footnote 2: the EARTH runtime "can
    /// speculatively issue the remote operation, even for an invalid
    /// address"); the default. When `false`, a tuple that crossed a
    /// conditional, loop, or possibly-returning statement is only placed
    /// at points where the must-dereference analysis guarantees a
    /// dereference of its base on every path (the footnote's first
    /// method).
    pub speculative_remote_ok: bool,
    /// Enable code motion of remote reads (earliest placement). Disabling
    /// leaves reads in place but still eliminates redundant ones — an
    /// ablation axis.
    pub enable_motion: bool,
    /// Enable blocking (`blkmov`) of grouped accesses.
    pub enable_blocking: bool,
    /// Enable redundant-communication elimination (reuse of an already
    /// issued read).
    pub enable_redundancy_elim: bool,
    /// Measured execution profile (profile-guided optimization). When set,
    /// placement replaces the static frequency guesses — halved branch
    /// frequencies, `loop_factor` trip counts — with measured branch
    /// probabilities and trip counts, and blocking becomes a pure
    /// cost-model decision over measured execution counts
    /// ([`should_block_profiled`](CommOptConfig::should_block_profiled)).
    /// `None` keeps the paper's static heuristics.
    pub profile: Option<Arc<ProfileDb>>,
    /// Which alias/frequency analysis feeds the cost model
    /// (`--alias {binary,prob}`; default binary, the paper's analysis).
    pub alias: AliasMode,
    /// Whether escape-analysis locality upgrades are applied before
    /// placement (`--escape {on,off}`; default off).
    pub escape: EscapeMode,
}

impl Default for CommOptConfig {
    fn default() -> Self {
        CommOptConfig {
            freq: FreqModel::default(),
            cost: CommCostModel::default(),
            block_threshold: 3,
            spurious_ratio: 2.0,
            speculative_remote_ok: true,
            enable_motion: true,
            enable_blocking: true,
            enable_redundancy_elim: true,
            profile: None,
            alias: AliasMode::default(),
            escape: EscapeMode::default(),
        }
    }
}

impl CommOptConfig {
    /// A configuration with every optimization disabled (the "simple"
    /// compile of the paper's evaluation).
    pub fn disabled() -> Self {
        CommOptConfig {
            enable_motion: false,
            enable_blocking: false,
            enable_redundancy_elim: false,
            ..CommOptConfig::default()
        }
    }

    /// Should a group of accesses through one pointer be blocked?
    ///
    /// `read_fields`/`write_fields` count distinct fields read/written;
    /// `struct_words` is the number of words the block moves transfer.
    pub fn should_block(
        &self,
        read_fields: usize,
        write_fields: usize,
        struct_words: usize,
    ) -> bool {
        self.should_block_ex(read_fields, write_fields, struct_words, false)
    }

    /// [`CommOptConfig::should_block`] with the *fully-initializing span*
    /// refinement: when every transferred word is written before any read,
    /// the up-front block read is skipped, so blocking costs only the
    /// write-back.
    pub fn should_block_ex(
        &self,
        read_fields: usize,
        write_fields: usize,
        struct_words: usize,
        full_init: bool,
    ) -> bool {
        if !self.enable_blocking {
            return false;
        }
        let words_needed = read_fields + write_fields;
        if words_needed < self.block_threshold {
            return false;
        }
        if struct_words as f64 > self.spurious_ratio * words_needed as f64 {
            return false;
        }
        let mut blocked = if full_init {
            0.0 // fully-initializing spans skip the up-front read
        } else {
            self.cost.blkmov_cost(struct_words)
        };
        if write_fields > 0 {
            // A write-back block move is needed as well.
            blocked += self.cost.blkmov_cost(struct_words);
        }
        let pipelined = self.cost.pipelined_cost(read_fields, write_fields);
        blocked < pipelined
    }

    /// The blocking decision with measured evidence: `execs` is how many
    /// times the span's accesses actually executed in the profiling run.
    ///
    /// A span that never executed is not blocked (its `blkmov` would be
    /// pure overhead on the paths that do run). A span that did execute is
    /// decided by the cost model *alone*: the static `block_threshold`
    /// gate — a stand-in for "is this span worth it?" when frequencies are
    /// guesses — is replaced by the measurement, so a hot two-word span
    /// (2 × 1908 ns pipelined vs 2602 ns blocked) now blocks, and the
    /// spurious-words rule still protects dependent chains.
    pub fn should_block_profiled(
        &self,
        read_fields: usize,
        write_fields: usize,
        struct_words: usize,
        full_init: bool,
        execs: u64,
    ) -> bool {
        if !self.enable_blocking || execs == 0 {
            return false;
        }
        let words_needed = read_fields + write_fields;
        if struct_words as f64 > self.spurious_ratio * words_needed as f64 {
            return false;
        }
        let mut blocked = if full_init {
            0.0
        } else {
            self.cost.blkmov_cost(struct_words)
        };
        if write_fields > 0 {
            blocked += self.cost.blkmov_cost(struct_words);
        }
        blocked < self.cost.pipelined_cost(read_fields, write_fields)
    }

    /// The blocking decision for a span whose pointer is a recognized loop
    /// induction (`p = p->f` once per iteration) with continue probability
    /// `loop_prob` (prob-alias mode only).
    ///
    /// The static `block_threshold` gate exists because static frequencies
    /// are guesses; an induction span provably executes once per surviving
    /// iteration, so — exactly as under measurement
    /// ([`should_block_profiled`](CommOptConfig::should_block_profiled)) —
    /// the decision falls to the cost model alone, discounted by the
    /// probability an iteration actually runs. The spurious-words rule
    /// still applies. A loop more likely to exit than continue
    /// (`loop_prob < 0.5`) keeps the static decision.
    pub fn should_block_induction(
        &self,
        read_fields: usize,
        write_fields: usize,
        struct_words: usize,
        full_init: bool,
        loop_prob: f64,
    ) -> bool {
        if !self.enable_blocking || loop_prob < 0.5 {
            return false;
        }
        let words_needed = read_fields + write_fields;
        if struct_words as f64 > self.spurious_ratio * words_needed as f64 {
            return false;
        }
        let mut blocked = if full_init {
            0.0
        } else {
            self.cost.blkmov_cost(struct_words)
        };
        if write_fields > 0 {
            blocked += self.cost.blkmov_cost(struct_words);
        }
        // Conservative tilt: the pipelined side is discounted by the
        // continue probability, so blocking must pay off even when only a
        // `loop_prob` fraction of entries reaches the span.
        blocked < self.cost.pipelined_cost(read_fields, write_fields) * loop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_of_three_holds() {
        let cfg = CommOptConfig::default();
        // Two reads: pipelined (threshold gate).
        assert!(!cfg.should_block(2, 0, 2));
        // Three reads of a three-word struct: blocked.
        assert!(cfg.should_block(3, 0, 3));
        // Two reads + two writes of a two-word struct (Figure 4): blocked.
        assert!(cfg.should_block(2, 2, 2));
    }

    #[test]
    fn huge_spurious_struct_shifts_to_pipelining() {
        let cfg = CommOptConfig::default();
        // Three fields needed out of a 60-word struct: the per-word
        // streaming cost of the spurious fields outweighs the saving.
        assert!(!cfg.should_block(3, 0, 60));
        // Three fields of a 7-word struct: the spurious-ratio rule keeps
        // it pipelined (7 > 2 x 3), protecting dependent chains from the
        // higher blkmov completion latency.
        assert!(!cfg.should_block(3, 0, 7));
        assert!(cfg.should_block(4, 0, 7));
    }

    #[test]
    fn blocking_disabled_never_blocks() {
        let cfg = CommOptConfig {
            enable_blocking: false,
            ..CommOptConfig::default()
        };
        assert!(!cfg.should_block(5, 5, 10));
    }

    #[test]
    fn cost_model_matches_table_one() {
        let c = CommCostModel::default();
        assert_eq!(c.blkmov_cost(1), 2602.0);
        assert_eq!(c.blkmov_cost(3), 2602.0 + 320.0);
        assert_eq!(c.pipelined_cost(2, 1), 2.0 * 1908.0 + 1749.0);
    }

    #[test]
    fn profiled_blocking_follows_measurement() {
        let cfg = CommOptConfig::default();
        // A hot two-word span is below the static threshold of three but
        // profitable by pure cost (2 x 1908 > 2602): measurement flips it.
        assert!(!cfg.should_block(2, 0, 2));
        assert!(cfg.should_block_profiled(2, 0, 2, false, 100));
        // A span that never executed is never blocked, however big.
        assert!(cfg.should_block(3, 0, 3));
        assert!(!cfg.should_block_profiled(3, 0, 3, false, 0));
        // The spurious-words rule still applies under measurement.
        assert!(!cfg.should_block_profiled(3, 0, 60, false, 100));
        // A single profiled read is not worth a blkmov (1908 < 2602).
        assert!(!cfg.should_block_profiled(1, 0, 1, false, 100));
    }

    #[test]
    fn induction_blocking_is_cost_only_but_probability_gated() {
        let cfg = CommOptConfig::default();
        // A two-word list node (next + payload): below the static
        // threshold, but the cost model favours one blkmov over two
        // pipelined reads when the loop almost always continues.
        assert!(!cfg.should_block(2, 0, 2));
        assert!(cfg.should_block_induction(2, 0, 2, false, 0.9));
        // A loop more likely to exit than continue keeps the static
        // decision.
        assert!(!cfg.should_block_induction(2, 0, 2, false, 0.3));
        // The spurious-words rule still protects dependent chains.
        assert!(!cfg.should_block_induction(2, 0, 60, false, 0.9));
        // A single read never beats its own blkmov.
        assert!(!cfg.should_block_induction(1, 0, 1, false, 0.9));
        // The discount can tip a marginal span back to pipelining:
        // 2 reads of a 2-word struct costs 2762 blocked vs 3816 * p
        // pipelined — at p = 0.7 the pipelined side is cheaper.
        assert!(!cfg.should_block_induction(2, 0, 2, false, 0.7));
    }

    #[test]
    fn alias_mode_defaults_to_binary() {
        assert_eq!(CommOptConfig::default().alias, AliasMode::Binary);
        assert_eq!(AliasMode::default(), AliasMode::Binary);
    }

    #[test]
    fn escape_mode_defaults_to_off() {
        assert_eq!(CommOptConfig::default().escape, EscapeMode::Off);
        assert_eq!(EscapeMode::default(), EscapeMode::Off);
    }

    #[test]
    fn disabled_config_turns_everything_off() {
        let cfg = CommOptConfig::disabled();
        assert!(!cfg.enable_motion);
        assert!(!cfg.enable_blocking);
        assert!(!cfg.enable_redundancy_elim);
    }
}
