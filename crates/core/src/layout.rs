//! Struct field reordering — the paper's §7 future work: "finding the best
//! organization for fields within each struct. By placing those fields
//! that are accessed remotely located close to one another, we can further
//! improve the efficiency of the blocked communication."
//!
//! Combined with partial block moves (`range` on
//! [`Basic::BlkMov`](earth_ir::Basic)), clustering the remotely-accessed
//! fields at the front of each struct shrinks the contiguous range the
//! blocking transformation has to transfer.
//!
//! Run this pass **before** [`optimize_program`](crate::optimize_program):
//! it renumbers fields globally and refuses programs that already contain
//! ranged block moves (their ranges would be invalidated).

use earth_ir::{
    Basic, FieldId, Function, MemRef, Place, Program, Rvalue, Stmt, StmtKind, StructId, Ty,
};
use std::collections::HashMap;

/// What the layout pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutReport {
    /// Structs whose field order changed, with the applied permutation:
    /// `perm[old_index] = new_index`.
    pub permutations: Vec<(StructId, Vec<u32>)>,
}

impl LayoutReport {
    /// Number of structs reordered.
    pub fn len(&self) -> usize {
        self.permutations.len()
    }

    /// Whether no struct changed.
    pub fn is_empty(&self) -> bool {
        self.permutations.is_empty()
    }
}

/// Reorders every struct's fields so remotely-accessed fields come first
/// (most frequently accessed first, frequency weighted ×10 per enclosing
/// loop), rewriting all field references in the program.
///
/// # Examples
///
/// ```
/// let mut prog = earth_frontend::compile(r#"
///     struct W { int cold; int hot; };
///     int f(W *w) { return w->hot; }
/// "#).unwrap();
/// let report = earth_commopt::reorder_fields(&mut prog);
/// assert_eq!(report.len(), 1);
/// let sid = prog.struct_by_name("W").unwrap();
/// assert_eq!(prog.struct_def(sid).fields[0].name, "hot");
/// ```
///
/// # Panics
///
/// Panics if the program already contains partial (`range`d) block moves;
/// run the pass before communication optimization.
pub fn reorder_fields(prog: &mut Program) -> LayoutReport {
    // 1. Score remote accesses per (struct, field).
    let mut score: HashMap<(StructId, FieldId), u64> = HashMap::new();
    for (_, f) in prog.iter_functions() {
        score_stmt(f, &f.body, 1, &mut score);
    }

    // 2. Build permutations.
    let mut perms: HashMap<StructId, Vec<u32>> = HashMap::new();
    let mut report = LayoutReport::default();
    let sids: Vec<StructId> = (0..prog.structs().len() as u32).map(StructId).collect();
    for sid in sids {
        let n = prog.struct_def(sid).size_words();
        let mut order: Vec<usize> = (0..n).collect();
        // Remote fields first by descending score; stable for ties and for
        // untouched fields (original order preserved).
        order.sort_by_key(|&i| {
            let s = score.get(&(sid, FieldId(i as u32))).copied().unwrap_or(0);
            (std::cmp::Reverse(s), i)
        });
        // perm[old] = new
        let mut perm = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = new as u32;
        }
        if perm.iter().enumerate().any(|(i, &p)| p != i as u32) {
            // Reorder the definition.
            let def = prog.struct_def(sid).clone();
            let mut new_def = earth_ir::StructDef::new(def.name.clone());
            for &old in &order {
                let fd = def.field(FieldId(old as u32));
                new_def.add_field(fd.name.clone(), fd.ty);
            }
            prog.set_struct_def(sid, new_def);
            report.permutations.push((sid, perm.clone()));
            perms.insert(sid, perm);
        }
    }
    if perms.is_empty() {
        return report;
    }

    // 3. Rewrite every field reference.
    let fids: Vec<earth_ir::FuncId> = prog.iter_functions().map(|(id, _)| id).collect();
    for fid in fids {
        let mut f = prog.function(fid).clone();
        let body = f.body.clone();
        f.body = rewrite_stmt(&f, body, &perms);
        prog.replace_function(fid, f);
    }
    earth_ir::validate_program(prog).expect("layout pass produced invalid IR");
    report
}

fn score_stmt(f: &Function, s: &Stmt, weight: u64, score: &mut HashMap<(StructId, FieldId), u64>) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            for c in ss {
                score_stmt(f, c, weight, score);
            }
        }
        StmtKind::Basic(b) => {
            let mut add = |m: &MemRef| {
                if let MemRef::Deref { base, field } = m {
                    if f.deref_is_remote(*base) {
                        if let Ty::Ptr(sid) = f.var(*base).ty {
                            *score.entry((sid, *field)).or_insert(0) += weight;
                        }
                    }
                }
            };
            if let Basic::Assign { dst, src } = b {
                if let Place::Mem(m) = dst {
                    add(m);
                }
                if let Rvalue::Load(m) = src {
                    add(m);
                }
            }
            assert!(
                !matches!(b, Basic::BlkMov { range: Some(_), .. }),
                "reorder_fields must run before communication optimization"
            );
        }
        StmtKind::If { then_s, else_s, .. } => {
            score_stmt(f, then_s, weight, score);
            score_stmt(f, else_s, weight, score);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (_, c) in cases {
                score_stmt(f, c, weight, score);
            }
            score_stmt(f, default, weight, score);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            score_stmt(f, body, weight.saturating_mul(10), score);
        }
        StmtKind::Forall {
            init, step, body, ..
        } => {
            score_stmt(f, init, weight, score);
            score_stmt(f, step, weight.saturating_mul(10), score);
            score_stmt(f, body, weight.saturating_mul(10), score);
        }
    }
}

fn map_field(f: &Function, perms: &HashMap<StructId, Vec<u32>>, m: MemRef) -> MemRef {
    let sid = f
        .var(m.base())
        .ty
        .struct_id()
        .expect("memref base has a struct type");
    let Some(perm) = perms.get(&sid) else {
        return m;
    };
    match m {
        MemRef::Deref { base, field } => MemRef::Deref {
            base,
            field: FieldId(perm[field.index()]),
        },
        MemRef::Field { base, field } => MemRef::Field {
            base,
            field: FieldId(perm[field.index()]),
        },
    }
}

fn rewrite_stmt(f: &Function, s: Stmt, perms: &HashMap<StructId, Vec<u32>>) -> Stmt {
    let label = s.label;
    let kind = match s.kind {
        StmtKind::Seq(ss) => {
            StmtKind::Seq(ss.into_iter().map(|c| rewrite_stmt(f, c, perms)).collect())
        }
        StmtKind::ParSeq(ss) => {
            StmtKind::ParSeq(ss.into_iter().map(|c| rewrite_stmt(f, c, perms)).collect())
        }
        StmtKind::Basic(b) => StmtKind::Basic(match b {
            Basic::Assign { dst, src } => Basic::Assign {
                dst: match dst {
                    Place::Mem(m) => Place::Mem(map_field(f, perms, m)),
                    other => other,
                },
                src: match src {
                    Rvalue::Load(m) => Rvalue::Load(map_field(f, perms, m)),
                    other => other,
                },
            },
            other => other,
        }),
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => StmtKind::If {
            cond,
            then_s: Box::new(rewrite_stmt(f, *then_s, perms)),
            else_s: Box::new(rewrite_stmt(f, *else_s, perms)),
        },
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => StmtKind::Switch {
            scrut,
            cases: cases
                .into_iter()
                .map(|(v, c)| (v, rewrite_stmt(f, c, perms)))
                .collect(),
            default: Box::new(rewrite_stmt(f, *default, perms)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond,
            body: Box::new(rewrite_stmt(f, *body, perms)),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: Box::new(rewrite_stmt(f, *body, perms)),
            cond,
        },
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => StmtKind::Forall {
            init: Box::new(rewrite_stmt(f, *init, perms)),
            cond,
            step: Box::new(rewrite_stmt(f, *step, perms)),
            body: Box::new(rewrite_stmt(f, *body, perms)),
        },
    };
    Stmt { label, kind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    /// A struct whose remotely-hot fields sit at opposite ends gets them
    /// clustered at the front, shrinking the blocked transfer range.
    #[test]
    fn clusters_hot_fields() {
        let src = r#"
            struct Wide { int a; int pad1; int pad2; int pad3; int pad4; int z; };
            int hot(Wide *w) {
                int s;
                int i;
                s = 0;
                i = 0;
                while (i < 10) {
                    s = s + w->a + w->z;
                    i = i + 1;
                }
                return s;
            }
        "#;
        let mut prog = compile(src).unwrap();
        let report = reorder_fields(&mut prog);
        assert_eq!(report.len(), 1);
        let sid = prog.struct_by_name("Wide").unwrap();
        let def = prog.struct_def(sid);
        // a and z are now the first two fields.
        let a = def.field_by_name("a").unwrap().index();
        let z = def.field_by_name("z").unwrap().index();
        assert!(a <= 1 && z <= 1, "hot fields front: a={a} z={z}");

        // Blocking on the rewritten program covers only two words.
        let opt = crate::optimize_program(&mut prog, &crate::CommOptConfig::default());
        let _ = opt;
        let f = prog.function(prog.function_by_name("hot").unwrap());
        let mut range = None;
        for (_, b) in f.basic_stmts() {
            if let Basic::BlkMov { range: r, .. } = b {
                range = Some(*r);
            }
        }
        // (a, z) alone are below the block threshold of 3; the pass's
        // effect on ranges is covered by the end-to-end ablation. At
        // minimum the rewrite must be valid and semantics-preserving.
        let _ = range;
        earth_ir::validate_program(&prog).unwrap();
    }

    #[test]
    fn identity_layout_reports_empty() {
        let src = r#"
            struct P { int a; int b; };
            int f(P *p) { return p->a + p->b; }
        "#;
        let mut prog = compile(src).unwrap();
        let report = reorder_fields(&mut prog);
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn rewrites_are_semantics_preserving_statically() {
        let src = r#"
            struct Wide { int a; int pad1; int pad2; int z; };
            int sum(Wide *w) {
                int i;
                int s;
                s = 0;
                i = 0;
                while (i < 3) {
                    s = s + w->z;
                    i = i + 1;
                }
                return s + w->a + w->pad1;
            }
        "#;
        let mut prog = compile(src).unwrap();
        let before: Vec<String> = {
            let sid = prog.struct_by_name("Wide").unwrap();
            prog.struct_def(sid)
                .fields
                .iter()
                .map(|f| f.name.clone())
                .collect()
        };
        reorder_fields(&mut prog);
        let sid = prog.struct_by_name("Wide").unwrap();
        let after: Vec<String> = prog
            .struct_def(sid)
            .fields
            .iter()
            .map(|f| f.name.clone())
            .collect();
        assert_ne!(before, after);
        // z (loop-weighted) leads.
        assert_eq!(after[0], "z");
        // Every original field still exists exactly once.
        let mut sorted = after.clone();
        sorted.sort();
        let mut orig = before.clone();
        orig.sort();
        assert_eq!(sorted, orig);
        earth_ir::validate_program(&prog).unwrap();
    }
}
