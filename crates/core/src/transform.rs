//! Applies a selection [`Plan`] to a function body.

use crate::selection::{Plan, Replace};
use earth_ir::{Basic, Function, Label, MemRef, Place, Rvalue, Stmt, StmtKind};

/// Rewrites `func`'s body according to `plan`: inserts the planned
/// communication statements and rewrites the covered remote accesses.
///
/// Inserted statements receive fresh labels; original statements keep
/// theirs, so analysis results remain addressable after transformation.
///
/// # Panics
///
/// Panics if the plan refers to labels that do not exist or replaces
/// statements that are not remote accesses (both indicate an internal
/// selection bug).
pub fn apply_plan(func: &mut Function, plan: &Plan) {
    let body = std::mem::replace(
        &mut func.body,
        Stmt {
            label: Label(0),
            kind: StmtKind::Seq(Vec::new()),
        },
    );
    let new_body = rewrite(func, body, plan);
    func.body = new_body;
    func.sync_label_counter();
}

fn rewrite(func: &mut Function, s: Stmt, plan: &Plan) -> Stmt {
    let label = s.label;
    let kind = match s.kind {
        StmtKind::Seq(children) => {
            let mut out = Vec::with_capacity(children.len());
            for child in children {
                let child_label = child.label;
                if let Some(inserts) = plan.inserts_before.get(&child_label) {
                    for b in inserts {
                        let l = func.fresh_label();
                        out.push(Stmt {
                            label: l,
                            kind: StmtKind::Basic(b.clone()),
                        });
                    }
                }
                out.push(rewrite(func, child, plan));
                if let Some(inserts) = plan.inserts_after.get(&child_label) {
                    for b in inserts {
                        let l = func.fresh_label();
                        out.push(Stmt {
                            label: l,
                            kind: StmtKind::Basic(b.clone()),
                        });
                    }
                }
            }
            StmtKind::Seq(out)
        }
        StmtKind::ParSeq(children) => StmtKind::ParSeq(
            children
                .into_iter()
                .map(|c| rewrite(func, c, plan))
                .collect(),
        ),
        StmtKind::Basic(b) => StmtKind::Basic(match plan.replace.get(&label) {
            Some(action) => apply_replace(b, *action),
            None => b,
        }),
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => StmtKind::If {
            cond,
            then_s: Box::new(rewrite(func, *then_s, plan)),
            else_s: Box::new(rewrite(func, *else_s, plan)),
        },
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => StmtKind::Switch {
            scrut,
            cases: cases
                .into_iter()
                .map(|(v, c)| (v, rewrite(func, c, plan)))
                .collect(),
            default: Box::new(rewrite(func, *default, plan)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond,
            body: Box::new(rewrite(func, *body, plan)),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: Box::new(rewrite(func, *body, plan)),
            cond,
        },
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => StmtKind::Forall {
            init: Box::new(rewrite(func, *init, plan)),
            cond,
            step: Box::new(rewrite(func, *step, plan)),
            body: Box::new(rewrite(func, *body, plan)),
        },
    };
    Stmt { label, kind }
}

fn apply_replace(b: Basic, action: Replace) -> Basic {
    match (b, action) {
        // dst = p~>f  ==>  dst = temp
        (
            Basic::Assign {
                dst,
                src: Rvalue::Load(MemRef::Deref { .. }),
            },
            Replace::ReadToTemp(temp),
        ) => Basic::Assign {
            dst,
            src: Rvalue::Use(earth_ir::Operand::Var(temp)),
        },
        // dst = p~>f  ==>  dst = buf.f
        (
            Basic::Assign {
                dst,
                src: Rvalue::Load(MemRef::Deref { field, .. }),
            },
            Replace::ReadToBuf(buf),
        ) => Basic::Assign {
            dst,
            src: Rvalue::Load(MemRef::Field { base: buf, field }),
        },
        // p~>f = v  ==>  buf.f = v
        (
            Basic::Assign {
                dst: Place::Mem(MemRef::Deref { field, .. }),
                src,
            },
            Replace::WriteToBuf(buf),
        ) => Basic::Assign {
            dst: Place::Mem(MemRef::Field { base: buf, field }),
            src,
        },
        (b, action) => panic!("plan action {action:?} does not match statement {b:?}"),
    }
}
