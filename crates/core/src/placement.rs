//! Possible-placement analysis (the paper's §4.1, Figures 5 and 6).
//!
//! Computes, for every program point, the set of remote communication
//! expressions that can safely be placed there:
//!
//! * **RemoteReads(S)** — remote reads placeable just *before* statement S,
//!   collected by a *backward* structured traversal. Reads are propagated
//!   optimistically: tuples flow out of conditionals (all alternatives,
//!   frequency divided) and loops (frequency multiplied), because reading a
//!   spurious field early is safe (modulo speculative dereference, which is
//!   tracked per tuple).
//! * **RemoteWrites(S)** — remote writes placeable just *after* statement
//!   S, collected by a *forward* traversal. Writes are propagated
//!   conservatively: only tuples occurring in **all** alternatives of a
//!   conditional survive it, and only `do`-loops (which execute at least
//!   once) let writes escape.
//!
//! Both analyses complete in a single traversal of the structured SIMPLE
//! representation — no iteration is required (the paper's key efficiency
//! point).
//!
//! Kill rules consume the [`earth_analysis`] queries:
//! a read tuple `(p, f)` dies crossing a statement that writes `p` itself
//! or may write `p->f` (through any connected pointer); a write tuple
//! additionally dies crossing reads of `p->f` and overwrites of the
//! variables holding its pending value.

use crate::config::FreqModel;
use crate::rce::{CommSet, Rce};
use earth_analysis::{AccessKind, FunctionAnalysis, ProbFacts};
use earth_ir::{Basic, Function, Label, MemRef, Operand, Place, Rvalue, Stmt, StmtKind};
use earth_profile::FuncProfile;
use std::collections::{HashMap, HashSet};

/// Results of possible-placement analysis for one function.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// `RemoteReads(S)`: tuples placeable just before the statement with
    /// the given label.
    pub reads_before: HashMap<Label, CommSet>,
    /// `RemoteWrites(S)`: tuples placeable just after the statement with
    /// the given label.
    pub writes_after: HashMap<Label, CommSet>,
    /// Must-dereference sets: the pointer variables that are dereferenced
    /// on *every* path starting just before the given statement, before
    /// being redefined — the paper's footnote-2 check ("there exists some
    /// dereference to p on all program paths starting at S"). Placing a
    /// dereference of `p` at a point where `p` is in this set is never
    /// speculative.
    pub must_deref_before: HashMap<Label, std::collections::HashSet<earth_ir::VarId>>,
}

impl Placement {
    /// Whether inserting a dereference of `base` just before statement
    /// `anchor` is guaranteed non-speculative.
    pub fn deref_guaranteed(&self, base: earth_ir::VarId, anchor: Label) -> bool {
        self.must_deref_before
            .get(&anchor)
            .is_some_and(|s| s.contains(&base))
    }
}

/// Runs possible-placement analysis over a function.
///
/// # Examples
///
/// ```
/// use earth_commopt::{analyze_placement, FreqModel};
///
/// let prog = earth_frontend::compile(r#"
///     struct P { double x; double y; };
///     double f(P *p) { return p->x + p->y; }
/// "#).unwrap();
/// let analysis = earth_analysis::analyze(&prog);
/// let fid = prog.function_by_name("f").unwrap();
/// let f = prog.function(fid);
/// let placement = analyze_placement(f, analysis.function(fid), &FreqModel::default());
/// // Both reads are placeable at the top of the function.
/// let first = match &f.body.kind {
///     earth_ir::StmtKind::Seq(ss) => ss[0].label,
///     _ => unreachable!(),
/// };
/// assert_eq!(placement.reads_before[&first].len(), 2);
/// ```
pub fn analyze_placement(f: &Function, fa: &FunctionAnalysis, freq: &FreqModel) -> Placement {
    analyze_placement_profiled(f, fa, freq, None)
}

/// [`analyze_placement`] with an optional measured profile. When a
/// statement has profile data, its *measured* branch probability replaces
/// the static halving on conditionals and its *measured* mean trip count
/// replaces [`FreqModel::loop_factor`] on loops; statements without data
/// (never executed, or inserted after the profiling compile) keep the
/// static adjustments.
pub fn analyze_placement_profiled(
    f: &Function,
    fa: &FunctionAnalysis,
    freq: &FreqModel,
    profile: Option<&FuncProfile>,
) -> Placement {
    analyze_placement_with(f, fa, freq, profile, None)
}

/// [`analyze_placement_profiled`] with optional probability annotations
/// (`--alias prob`). Facts refine the *frequency* adjustments only — a
/// heuristic branch probability replaces the static halving where no
/// measurement exists — while the kill rules keep consulting the binary
/// alias queries unchanged (probabilities weight cost, never safety; the
/// `earth-lint` validator enforces this). Precedence per statement:
/// measured profile, then probability facts, then the static model.
pub fn analyze_placement_with(
    f: &Function,
    fa: &FunctionAnalysis,
    freq: &FreqModel,
    profile: Option<&FuncProfile>,
    facts: Option<&ProbFacts>,
) -> Placement {
    // Statements whose subtree may return early: hoisting a read above
    // them makes it execute on paths where it originally did not (the
    // paper's footnote 2 — only allowed when speculative remote reads are
    // tolerated).
    let mut has_return = HashSet::new();
    {
        // Mark every statement whose subtree contains a return.
        fn visit(s: &Stmt, set: &mut HashSet<Label>) -> bool {
            let mut any = matches!(s.kind, earth_ir::StmtKind::Basic(Basic::Return(_)));
            match &s.kind {
                earth_ir::StmtKind::Seq(ss) | earth_ir::StmtKind::ParSeq(ss) => {
                    for c in ss {
                        any |= visit(c, set);
                    }
                }
                earth_ir::StmtKind::Basic(_) => {}
                earth_ir::StmtKind::If { then_s, else_s, .. } => {
                    any |= visit(then_s, set);
                    any |= visit(else_s, set);
                }
                earth_ir::StmtKind::Switch { cases, default, .. } => {
                    for (_, c) in cases {
                        any |= visit(c, set);
                    }
                    any |= visit(default, set);
                }
                earth_ir::StmtKind::While { body, .. }
                | earth_ir::StmtKind::DoWhile { body, .. } => {
                    any |= visit(body, set);
                }
                earth_ir::StmtKind::Forall {
                    init, step, body, ..
                } => {
                    any |= visit(init, set);
                    any |= visit(step, set);
                    any |= visit(body, set);
                }
            }
            if any {
                set.insert(s.label);
            }
            any
        }
        visit(&f.body, &mut has_return);
    }
    let mut ctx = Ctx {
        f,
        fa,
        freq,
        profile,
        facts,
        has_return,
        out: Placement::default(),
    };
    ctx.collect_reads(&f.body);
    ctx.collect_writes(&f.body);
    ctx.must_deref(&f.body, HashSet::new());
    ctx.out
}

struct Ctx<'a> {
    f: &'a Function,
    fa: &'a FunctionAnalysis,
    freq: &'a FreqModel,
    profile: Option<&'a FuncProfile>,
    facts: Option<&'a ProbFacts>,
    has_return: HashSet<Label>,
    out: Placement,
}

impl Ctx<'_> {
    /// Probability that the branch at `l` is taken: the measurement when
    /// profiled, else the structural heuristic when prob-alias facts are
    /// present, else `None` (the caller's static 0.5).
    fn branch_prob(&self, l: Label) -> Option<f64> {
        self.profile
            .and_then(|p| p.branch_prob(l))
            .or_else(|| self.facts.and_then(|f| f.branch_prob(l)))
    }

    /// Expected iterations of the loop at `l`: the measured mean trip
    /// count when profiled (directly or via the facts), the static
    /// [`FreqModel::loop_factor`] guess otherwise.
    fn loop_trips(&self, l: Label) -> f64 {
        self.profile
            .and_then(|p| p.loop_trips(l))
            .or_else(|| self.facts.and_then(|f| f.loop_trips(l)))
            .unwrap_or(self.freq.loop_factor)
    }

    /// A read tuple `(p, f)` cannot be propagated above statement `l` if
    /// `l` writes `p` itself or may write `p->f`.
    fn read_killed_by(&self, t: &Rce, l: Label) -> bool {
        self.fa.var_written(t.base, l)
            || self
                .fa
                .heap_conflict(t.base, Some(t.field), l, AccessKind::Write)
    }

    /// A write tuple `(p, f)` cannot be propagated below statement `l` if
    /// `l` writes `p`, may read *or* write `p->f`, or overwrites a variable
    /// holding the pending value.
    fn write_killed_by(&self, t: &Rce, l: Label) -> bool {
        self.fa.var_written(t.base, l)
            || self
                .fa
                .heap_conflict(t.base, Some(t.field), l, AccessKind::ReadOrWrite)
            || t.value_vars.iter().any(|&v| self.fa.var_written(v, l))
    }

    /// The remote read generated by a basic statement, if any.
    fn gen_read(&self, label: Label, b: &Basic) -> Option<Rce> {
        if let Basic::Assign {
            src: Rvalue::Load(MemRef::Deref { base, field }),
            ..
        } = b
        {
            if self.f.deref_is_remote(*base) {
                return Some(Rce::read(*base, *field, label));
            }
        }
        None
    }

    /// The remote write generated by a basic statement, if any.
    fn gen_write(&self, label: Label, b: &Basic) -> Option<Rce> {
        if let Basic::Assign {
            dst: Place::Mem(MemRef::Deref { base, field }),
            src,
        } = b
        {
            if self.f.deref_is_remote(*base) {
                let value = match src {
                    Rvalue::Use(Operand::Var(v)) => Some(*v),
                    _ => None,
                };
                return Some(Rce::write(*base, *field, label, value));
            }
        }
        None
    }

    // ================= RemoteReads: backward =================

    /// Returns the set of read tuples placeable just before `s`
    /// (= `RemoteReads(s)`), recording it, and recursing into children.
    fn collect_reads(&mut self, s: &Stmt) -> CommSet {
        let result = match &s.kind {
            StmtKind::Basic(b) => match self.gen_read(s.label, b) {
                Some(r) => std::iter::once(r).collect(),
                None => CommSet::new(),
            },
            StmtKind::Seq(ss) => {
                let mut curr = CommSet::new();
                for child in ss.iter().rev() {
                    let gen = self.collect_reads(child);
                    let crosses_return = self.has_return.contains(&child.label);
                    let mut pred = gen;
                    for mut t in curr.into_items() {
                        if !self.read_killed_by(&t, child.label) {
                            // Hoisting above a possibly-returning statement
                            // makes the read speculative, and the access is
                            // no longer certain to execute: adjust the
                            // frequency as for a two-way conditional.
                            if crosses_return {
                                t.speculative = true;
                                t.freq /= 2.0;
                            }
                            pred.add(t);
                        }
                    }
                    curr = pred;
                    // `curr` is now RemoteReads(child): placeable just
                    // before `child`. The recursive call recorded the
                    // *generated* set; overwrite with the full set.
                    self.out.reads_before.insert(child.label, curr.clone());
                }
                curr
            }
            StmtKind::ParSeq(arms) => {
                // All arms execute; EARTH-C non-interference means no arm
                // can kill another arm's tuples. Union with unchanged
                // frequencies.
                let mut out = CommSet::new();
                for arm in arms {
                    let set = self.collect_reads(arm);
                    out.extend(set.into_items());
                }
                out
            }
            StmtKind::If { then_s, else_s, .. } => {
                let t = self.collect_reads(then_s);
                let e = self.collect_reads(else_s);
                // Static model: each arm runs half the time. With a
                // profile, the measured probability of the then-arm splits
                // the frequency instead, so reads in a rarely-taken arm
                // stay put while reads in the common arm still hoist.
                let p_then = self.branch_prob(s.label).unwrap_or(0.5);
                let mut out = CommSet::new();
                for (set, p) in [(t, p_then), (e, 1.0 - p_then)] {
                    for mut r in set.into_items() {
                        r.freq *= p;
                        r.speculative = true;
                        out.add(r);
                    }
                }
                out
            }
            StmtKind::Switch { cases, default, .. } => {
                let n = (cases.len() + 1) as f64;
                let mut out = CommSet::new();
                let mut sets = Vec::new();
                for (_, cs) in cases {
                    sets.push(self.collect_reads(cs));
                }
                sets.push(self.collect_reads(default));
                for set in sets {
                    for mut r in set.into_items() {
                        r.freq /= n;
                        r.speculative = true;
                        out.add(r);
                    }
                }
                out
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                let body_set = self.collect_reads(body);
                let executes_once = matches!(s.kind, StmtKind::DoWhile { .. });
                self.hoist_reads_from_loop(body_set, s.label, executes_once)
            }
            StmtKind::Forall {
                init, step, body, ..
            } => {
                // Per iteration the body runs, then the step. Propagate step
                // tuples above the body, then hoist out of the loop; the
                // init statement runs once before the loop.
                let step_set = self.collect_reads(step);
                let body_set = self.collect_reads(body);
                let mut per_iter = body_set;
                for t in step_set.into_items() {
                    if !self.read_killed_by(&t, body.label) {
                        per_iter.add(t);
                    }
                }
                let hoisted = self.hoist_reads_from_loop(per_iter, s.label, false);
                // Cross the init statement.
                let init_gen = self.collect_reads(init);
                let mut out = init_gen;
                for t in hoisted.into_items() {
                    if !self.read_killed_by(&t, init.label) {
                        out.add(t);
                    }
                }
                out
            }
        };
        self.out.reads_before.insert(s.label, result.clone());
        result
    }

    /// Applies the loop rule for reads: tuples not killed anywhere in the
    /// loop may move above it with scaled frequency.
    fn hoist_reads_from_loop(
        &self,
        body_set: CommSet,
        loop_label: Label,
        executes_once: bool,
    ) -> CommSet {
        let trips = self.loop_trips(loop_label);
        let mut out = CommSet::new();
        for mut t in body_set.into_items() {
            if self.read_killed_by(&t, loop_label) {
                continue;
            }
            t.freq *= trips;
            // A `do` loop executes at least once, so the hoisted
            // dereference is not speculative.
            t.speculative |= !executes_once;
            out.add(t);
        }
        out
    }

    // ================= RemoteWrites: forward =================

    /// Returns the set of write tuples placeable just after `s`
    /// (= `RemoteWrites(s)`), recording it, and recursing into children.
    fn collect_writes(&mut self, s: &Stmt) -> CommSet {
        let result = match &s.kind {
            StmtKind::Basic(b) => match self.gen_write(s.label, b) {
                Some(w) => std::iter::once(w).collect(),
                None => CommSet::new(),
            },
            StmtKind::Seq(ss) => {
                let mut curr = CommSet::new();
                for child in ss {
                    let gen = self.collect_writes(child);
                    let mut next = gen;
                    for t in curr.into_items() {
                        if !self.write_killed_by(&t, child.label) {
                            next.add(t);
                        }
                    }
                    curr = next;
                    self.out.writes_after.insert(child.label, curr.clone());
                }
                curr
            }
            StmtKind::ParSeq(arms) => {
                let mut out = CommSet::new();
                for arm in arms {
                    let set = self.collect_writes(arm);
                    out.extend(set.into_items());
                }
                out
            }
            StmtKind::If { then_s, else_s, .. } => {
                let t = self.collect_writes(then_s);
                let e = self.collect_writes(else_s);
                // Only tuples written in BOTH alternatives may move below
                // the conditional (spurious writes are never safe).
                let mut out = CommSet::new();
                for r in t.iter() {
                    if let Some(other) = e.get(r.base, r.field) {
                        let mut merged = r.clone();
                        merged.freq = (r.freq + other.freq) / 2.0;
                        merged.labels.extend(other.labels.iter().copied());
                        merged.value_vars.extend(other.value_vars.iter().copied());
                        out.add(merged);
                    }
                }
                out
            }
            StmtKind::Switch { cases, default, .. } => {
                let mut sets = Vec::new();
                for (_, cs) in cases {
                    sets.push(self.collect_writes(cs));
                }
                sets.push(self.collect_writes(default));
                let n = sets.len() as f64;
                let mut out = CommSet::new();
                let Some((first, rest)) = sets.split_first() else {
                    return CommSet::new();
                };
                for r in first.iter() {
                    let others: Vec<&Rce> =
                        rest.iter().filter_map(|s| s.get(r.base, r.field)).collect();
                    if others.len() == rest.len() {
                        let mut merged = r.clone();
                        for o in others {
                            merged.freq += o.freq;
                            merged.labels.extend(o.labels.iter().copied());
                            merged.value_vars.extend(o.value_vars.iter().copied());
                        }
                        merged.freq /= n;
                        out.add(merged);
                    }
                }
                out
            }
            StmtKind::While { body, .. } => {
                // The loop may execute zero times: a write inside must not
                // move below (it would then execute unconditionally).
                let _ = self.collect_writes(body);
                CommSet::new()
            }
            StmtKind::DoWhile { body, .. } => {
                let body_set = self.collect_writes(body);
                let mut out = CommSet::new();
                for mut t in body_set.into_items() {
                    // The tuple's own accesses (its Dlist) must be the only
                    // accesses to (p, f) in the loop; any *other* matching
                    // access — and any write to the base pointer — kills it.
                    if self.fa.var_written(t.base, s.label) || self.loop_write_conflict(body, &t) {
                        continue;
                    }
                    t.freq *= self.loop_trips(s.label);
                    out.add(t);
                }
                out
            }
            StmtKind::Forall { body, .. } => {
                // Forall iterations are independent; writes stay inside.
                let _ = self.collect_writes(body);
                CommSet::new()
            }
        };
        self.out.writes_after.insert(s.label, result.clone());
        result
    }

    // ================= Must-dereference: backward =================

    /// Computes, for every statement, the set of pointer variables
    /// guaranteed to be dereferenced (before redefinition) on every path
    /// starting just before it; `after` is the set holding just after `s`.
    /// Records the per-statement sets and returns the set before `s`.
    fn must_deref(
        &mut self,
        s: &Stmt,
        after: HashSet<earth_ir::VarId>,
    ) -> HashSet<earth_ir::VarId> {
        let before = match &s.kind {
            StmtKind::Basic(b) => {
                if matches!(b, Basic::Return(_)) {
                    // A path ending here performs no further dereferences.
                    HashSet::new()
                } else {
                    let rw = self.fa.rw.get(s.label);
                    let mut out: HashSet<earth_ir::VarId> = after
                        .iter()
                        .copied()
                        .filter(|v| !rw.vars_written.contains(v))
                        .collect();
                    for h in rw.heap_reads.iter().chain(rw.heap_writes.iter()) {
                        if h.direct {
                            out.insert(h.base);
                        }
                    }
                    out
                }
            }
            StmtKind::Seq(ss) => {
                let mut cur = after;
                for child in ss.iter().rev() {
                    cur = self.must_deref(child, cur);
                }
                cur
            }
            StmtKind::ParSeq(arms) => {
                // Every arm executes to completion before the join.
                let mut out = after.clone();
                for arm in arms {
                    let arm_must = self.must_deref(arm, HashSet::new());
                    out.extend(arm_must);
                }
                out
            }
            StmtKind::If { then_s, else_s, .. } => {
                let t = self.must_deref(then_s, after.clone());
                let e = self.must_deref(else_s, after);
                t.intersection(&e).copied().collect()
            }
            StmtKind::Switch { cases, default, .. } => {
                let mut sets = Vec::new();
                for (_, cs) in cases {
                    sets.push(self.must_deref(cs, after.clone()));
                }
                sets.push(self.must_deref(default, after));
                let mut it = sets.into_iter();
                let mut out = it.next().unwrap_or_default();
                for set in it {
                    out = out.intersection(&set).copied().collect();
                }
                out
            }
            StmtKind::While { body, .. } => {
                // The loop may execute zero times; variables it redefines
                // are not guaranteed to keep their value on looping paths.
                let kept: HashSet<earth_ir::VarId> = after
                    .iter()
                    .copied()
                    .filter(|v| !self.fa.var_written(*v, s.label))
                    .collect();
                let _ = self.must_deref(body, kept.clone());
                kept
            }
            StmtKind::DoWhile { body, .. } => {
                // Executes at least once.
                let kept: HashSet<earth_ir::VarId> = after
                    .iter()
                    .copied()
                    .filter(|v| !self.fa.var_written(*v, s.label))
                    .collect();
                self.must_deref(body, kept)
            }
            StmtKind::Forall {
                init, step, body, ..
            } => {
                let kept: HashSet<earth_ir::VarId> = after
                    .iter()
                    .copied()
                    .filter(|v| !self.fa.var_written(*v, s.label))
                    .collect();
                let _ = self.must_deref(body, HashSet::new());
                let _ = self.must_deref(step, HashSet::new());
                self.must_deref(init, kept)
            }
        };
        self.out.must_deref_before.insert(s.label, before.clone());
        before
    }

    /// Checks whether a loop body contains an access to the tuple's
    /// location other than the tuple's own writes (which are exempt, per
    /// the `d` parameter of the paper's `accessedViaAlias`).
    fn loop_write_conflict(&self, body: &Stmt, t: &Rce) -> bool {
        let mut conflict = false;
        body.walk(&mut |st| {
            if conflict || !matches!(st.kind, StmtKind::Basic(_)) {
                return;
            }
            if t.labels.contains(&st.label) {
                // The tuple's own write: check only its read side (none —
                // remote write statements read no heap).
                return;
            }
            if self
                .fa
                .heap_conflict(t.base, Some(t.field), st.label, AccessKind::ReadOrWrite)
            {
                conflict = true;
            }
            // Note: writes to the tuple's value variables inside the loop do
            // NOT conflict. The tuple only escapes the loop if it survived
            // forward propagation to the end of the body, so within an
            // iteration the value variable is assigned *before* the write;
            // the escaped write then stores the variable's final value —
            // exactly what the last iteration would have written.
        });
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn placed(src: &str, func: &str) -> (earth_ir::Program, Placement, earth_ir::FuncId) {
        let prog = compile(src).unwrap();
        let analysis = earth_analysis::analyze(&prog);
        let fid = prog.function_by_name(func).unwrap();
        let p = analyze_placement(
            prog.function(fid),
            analysis.function(fid),
            &FreqModel::default(),
        );
        (prog, p, fid)
    }

    /// The paper's Figure 3: all four remote reads of `distance` float to
    /// the top of the function and merge into two tuples of frequency 2.
    #[test]
    fn fig3_distance_reads_reach_function_top() {
        let (prog, placement, fid) = placed(
            r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#,
            "distance",
        );
        let f = prog.function(fid);
        let first_label = match &f.body.kind {
            StmtKind::Seq(ss) => ss[0].label,
            _ => panic!(),
        };
        let set = &placement.reads_before[&first_label];
        assert_eq!(set.len(), 2, "x and y tuples: {set}");
        let p = f.var_by_name("p").unwrap();
        let x = prog.struct_def(prog.struct_by_name("Point").unwrap());
        let fx = x.field_by_name("x").unwrap();
        let fy = x.field_by_name("y").unwrap();
        assert_eq!(set.get(p, fx).unwrap().freq, 2.0);
        assert_eq!(set.get(p, fx).unwrap().labels.len(), 2);
        assert_eq!(set.get(p, fy).unwrap().freq, 2.0);
    }

    /// The paper's Figure 4: both remote writes of `scale_point` flow to
    /// the bottom of the function.
    #[test]
    fn fig4_scale_point_writes_reach_function_bottom() {
        let (prog, placement, fid) = placed(
            r#"
            struct Point { double x; double y; };
            double scale(double v, double k) { return v * k; }
            void scale_point(Point *p, double k) {
                p->x = scale(p->x, k);
                p->y = scale(p->y, k);
            }
        "#,
            "scale_point",
        );
        let f = prog.function(fid);
        let last_label = match &f.body.kind {
            StmtKind::Seq(ss) => ss.last().unwrap().label,
            _ => panic!(),
        };
        let set = &placement.writes_after[&last_label];
        assert_eq!(set.len(), 2, "x and y write tuples: {set}");
        // And reads also reach the top.
        let first_label = match &f.body.kind {
            StmtKind::Seq(ss) => ss[0].label,
            _ => panic!(),
        };
        let reads = &placement.reads_before[&first_label];
        assert_eq!(reads.len(), 2, "{reads}");
    }

    /// Writes do not move out of a conditional unless present in both
    /// branches.
    #[test]
    fn conditional_writes_need_both_branches() {
        let (prog, placement, fid) = placed(
            r#"
            struct P { double x; double y; };
            void f(P *p, int c) {
                double k;
                k = 1.0;
                if (c > 0) {
                    p->x = k;
                    p->y = k;
                } else {
                    p->x = k;
                }
            }
        "#,
            "f",
        );
        let f = prog.function(fid);
        let if_label = {
            let mut l = None;
            f.body.walk(&mut |s| {
                if matches!(s.kind, StmtKind::If { .. }) {
                    l = Some(s.label);
                }
            });
            l.unwrap()
        };
        let set = &placement.writes_after[&if_label];
        assert_eq!(set.len(), 1, "only p->x is written on both paths: {set}");
        let p = f.var_by_name("p").unwrap();
        let sid = prog.struct_by_name("P").unwrap();
        let fx = prog.struct_def(sid).field_by_name("x").unwrap();
        assert!(set.get(p, fx).is_some());
    }

    /// Reads move out of both branches of a conditional with halved
    /// frequency, and merge when both branches read the same field.
    #[test]
    fn conditional_reads_merge_with_adjusted_frequency() {
        let (prog, placement, fid) = placed(
            r#"
            struct P { double x; double y; };
            double f(P *p, int c) {
                double a;
                a = 0.0;
                if (c > 0) {
                    a = p->x;
                } else {
                    a = p->x + p->y;
                }
                return a;
            }
        "#,
            "f",
        );
        let f = prog.function(fid);
        let first_label = match &f.body.kind {
            StmtKind::Seq(ss) => ss[0].label,
            _ => panic!(),
        };
        let set = &placement.reads_before[&first_label];
        let p = f.var_by_name("p").unwrap();
        let sid = prog.struct_by_name("P").unwrap();
        let fx = prog.struct_def(sid).field_by_name("x").unwrap();
        let fy = prog.struct_def(sid).field_by_name("y").unwrap();
        let tx = set.get(p, fx).unwrap();
        assert_eq!(tx.freq, 1.0, "0.5 + 0.5");
        assert!(tx.speculative);
        assert_eq!(set.get(p, fy).unwrap().freq, 0.5);
    }

    /// Loop-invariant reads hoist out of loops with frequency ×10; tuples
    /// whose base is rewritten in the loop do not.
    #[test]
    fn loop_hoisting_and_kills() {
        let (prog, placement, fid) = placed(
            r#"
            struct node { node* next; double x; };
            double f(node *p, node *t) {
                double acc;
                double bx;
                acc = 0.0;
                while (p != NULL) {
                    bx = t->x;
                    acc = acc + bx + p->x;
                    p = p->next;
                }
                return acc;
            }
        "#,
            "f",
        );
        let f = prog.function(fid);
        let first_label = match &f.body.kind {
            StmtKind::Seq(ss) => ss[0].label,
            _ => panic!(),
        };
        let set = &placement.reads_before[&first_label];
        let t = f.var_by_name("t").unwrap();
        let p = f.var_by_name("p").unwrap();
        let sid = prog.struct_by_name("node").unwrap();
        let fx = prog.struct_def(sid).field_by_name("x").unwrap();
        let tx = set.get(t, fx).unwrap();
        assert_eq!(tx.freq, 10.0);
        assert!(tx.speculative, "while loop may execute zero times");
        assert!(set.get(p, fx).is_none(), "p is rewritten in the loop");
    }

    /// `do`-loops allow writes to escape; `while`-loops never do.
    #[test]
    fn do_while_writes_escape() {
        let (prog, placement, fid) = placed(
            r#"
            struct P { double x; int n; };
            void f(P *p) {
                int i;
                double v;
                i = 0;
                v = 0.0;
                do {
                    v = v + 1.0;
                    p->x = v;
                    i = i + 1;
                } while (i < 10);
            }
        "#,
            "f",
        );
        let f = prog.function(fid);
        let do_label = {
            let mut l = None;
            f.body.walk(&mut |s| {
                if matches!(s.kind, StmtKind::DoWhile { .. }) {
                    l = Some(s.label);
                }
            });
            l.unwrap()
        };
        let set = &placement.writes_after[&do_label];
        let p = f.var_by_name("p").unwrap();
        let sid = prog.struct_by_name("P").unwrap();
        let fx = prog.struct_def(sid).field_by_name("x").unwrap();
        let t = set.get(p, fx).expect("write escapes the do-loop");
        assert_eq!(t.freq, 10.0);
    }

    /// A read of the written field inside the loop pins the write.
    #[test]
    fn do_while_write_pinned_by_read() {
        let (prog, placement, fid) = placed(
            r#"
            struct P { double x; int n; };
            void f(P *p) {
                int i;
                double v;
                i = 0;
                do {
                    v = p->x;
                    p->x = v + 1.0;
                    i = i + 1;
                } while (i < 10);
            }
        "#,
            "f",
        );
        let f = prog.function(fid);
        let do_label = {
            let mut l = None;
            f.body.walk(&mut |s| {
                if matches!(s.kind, StmtKind::DoWhile { .. }) {
                    l = Some(s.label);
                }
            });
            l.unwrap()
        };
        let set = &placement.writes_after[&do_label];
        assert!(
            set.is_empty(),
            "read of p->x each iteration pins the write: {set}"
        );
    }
}
