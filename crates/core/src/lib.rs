//! # earth-commopt — communication optimization for parallel C programs
//!
//! The primary contribution of Zhu & Hendren, *Communication Optimizations
//! for Parallel C Programs* (PLDI 1998), reproduced over the SIMPLE IR of
//! [`earth_ir`]:
//!
//! * [`placement`] — **possible-placement analysis**: for every program
//!   point, the set of remote reads (propagated backwards, optimistically)
//!   and remote writes (propagated forwards, conservatively) that may be
//!   placed there;
//! * [`selection`] — **communication selection**: picks the earliest safe
//!   placement for reads, eliminates redundant communication with a hash
//!   table of already-issued operations, and chooses between pipelined
//!   scalar operations and blocked `blkmov` transfers with a cost model
//!   calibrated to EARTH-MANNA's Table I;
//! * [`transform`] — applies the selected plan to the IR.
//!
//! # Examples
//!
//! Optimize the paper's Figure 3 `distance` function:
//!
//! ```
//! use earth_commopt::{optimize_program, CommOptConfig};
//!
//! let mut prog = earth_frontend::compile(r#"
//!     struct Point { double x; double y; };
//!     double distance(Point *p) {
//!         double d;
//!         d = sqrt(p->x * p->x + p->y * p->y);
//!         return d;
//!     }
//! "#).unwrap();
//! let report = optimize_program(&mut prog, &CommOptConfig::default());
//! // Four remote reads collapse into two pipelined reads (Figure 3(c)).
//! assert_eq!(report.total().pipelined_reads, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod inline;
pub mod layout;
pub mod motion;
pub mod placement;
pub mod rce;
pub mod selection;
pub mod transform;

pub use config::{AliasMode, CommCostModel, CommOptConfig, EscapeMode, FreqModel};
pub use earth_analysis::{EscapeAnalysis, EscapeJustification, EscapeVerdict};
pub use earth_profile::{FuncProfile, Profile, ProfileDb};
pub use inline::{inline_functions, InlineConfig, InlineReport};
pub use layout::{reorder_fields, LayoutReport};
pub use motion::{Motion, MotionKind, MotionLog, ProbJustification};
pub use placement::{
    analyze_placement, analyze_placement_profiled, analyze_placement_with, Placement,
};
pub use rce::{CommSet, Rce};
pub use selection::{select, select_profiled, select_with, Plan, Replace, SelectionStats};
pub use transform::apply_plan;

use earth_analysis::{MeasuredFreqs, ProbFacts, ProgramAnalysis};
use earth_ir::{FuncId, Function, Program, Stmt, StmtKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-function optimization outcome.
#[derive(Debug, Clone)]
pub struct FnReport {
    /// The function.
    pub func: FuncId,
    /// Selection counters.
    pub stats: SelectionStats,
    /// Every motion selection performed, in decision order. Labels refer to
    /// the pre-optimization statement labels (which the transformer keeps).
    pub motion: MotionLog,
}

/// Whole-program optimization outcome.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// One entry per function, in [`FuncId`] order.
    pub functions: Vec<FnReport>,
}

impl OptReport {
    /// Sums the per-function counters.
    pub fn total(&self) -> SelectionStats {
        let mut t = SelectionStats::default();
        for f in &self.functions {
            t.blocked_spans += f.stats.blocked_spans;
            t.blocked_writebacks += f.stats.blocked_writebacks;
            t.pipelined_reads += f.stats.pipelined_reads;
            t.reads_rewritten += f.stats.reads_rewritten;
            t.writes_rewritten += f.stats.writes_rewritten;
            t.pgo_flips += f.stats.pgo_flips;
            t.induction_blocks += f.stats.induction_blocks;
        }
        t
    }
}

/// The default fan-out width for [`optimize_program`]: one worker per
/// available hardware thread (1 when parallelism cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count to a sane pool: at least 1, at most
/// [`default_workers`] (the machine's available parallelism). `--workers 0`
/// and oversubscribed requests both land on a real pool size; the result
/// never changes *what* the optimizer produces, only how wide it fans out.
pub fn clamp_workers(requested: usize) -> usize {
    requested.clamp(1, default_workers())
}

/// Converts a resolved profile view into the crate-neutral
/// [`MeasuredFreqs`] form consumed by [`ProbFacts::compute`] (the analysis
/// crate cannot depend on the profile crate): the measured branch
/// probability of every `if` and the continue probability / mean trip
/// count of every loop, keyed by statement label. Returns `None` when no
/// profile covered the function, so the structural heuristics stand alone.
pub fn measured_freqs(func: &Function, view: Option<&FuncProfile>) -> Option<MeasuredFreqs> {
    let view = view.filter(|v| v.matched() > 0)?;
    let mut m = MeasuredFreqs::default();
    func.body.walk(&mut |s: &Stmt| match &s.kind {
        StmtKind::If { .. } => {
            if let Some(p) = view.branch_prob(s.label) {
                m.branch_prob.insert(s.label, p);
            }
        }
        StmtKind::While { .. } | StmtKind::DoWhile { .. } => {
            if let Some(p) = view.branch_prob(s.label) {
                m.branch_prob.insert(s.label, p);
            }
            if let Some(t) = view.loop_trips(s.label) {
                m.loop_trips.insert(s.label, t);
            }
        }
        _ => {}
    });
    Some(m)
}

/// Placement analysis + selection + transformation for one function,
/// against the whole-program `analysis`. Pure with respect to `prog` (only
/// struct layouts and the function body are read), which is what makes the
/// per-function fan-out of [`optimize_program_with`] deterministic.
fn optimize_function(
    prog: &Program,
    analysis: &ProgramAnalysis,
    cfg: &CommOptConfig,
    escape: Option<&EscapeAnalysis>,
    fid: FuncId,
) -> (FuncId, Function, FnReport) {
    let fa = analysis.function(fid);
    let mut func = prog.function(fid).clone();
    // Escape/affinity upgrades go in *before* placement: a pointer proven
    // node-local (or owner-confined) stops being `MaybeRemote`, so its
    // dereferences never enter the RCE sets and selection emits plain local
    // ops instead of split-phase reads. The justifications ride along in
    // the motion log for `earth-lint` to re-derive (ESC001–ESC003).
    let escapes = match escape {
        Some(esc) => esc.apply(fid, &mut func),
        None => Vec::new(),
    };
    // Resolve the profile (if any) against this function's sites *before*
    // selection rewrites the tree — the same pipeline point at which the
    // instrumented compile recorded them (see `earth_ir::site`).
    let view = cfg.profile.as_ref().map(|db| db.function_view(fid, &func));
    let facts = match cfg.alias {
        AliasMode::Binary => None,
        AliasMode::Prob => Some(ProbFacts::compute(
            &func,
            fa,
            measured_freqs(&func, view.as_ref()).as_ref(),
        )),
    };
    let placement = analyze_placement_with(&func, fa, &cfg.freq, view.as_ref(), facts.as_ref());
    let mut plan = select_with(
        prog,
        &mut func,
        fa,
        &placement,
        cfg,
        view.as_ref(),
        facts.as_ref(),
    );
    plan.motion.escapes = escapes;
    apply_plan(&mut func, &plan);
    let report = FnReport {
        func: fid,
        stats: plan.stats,
        motion: plan.motion,
    };
    (fid, func, report)
}

/// Runs communication optimization over every function of `prog` using a
/// precomputed (cached) `analysis`, fanning the per-function
/// placement + selection work out across up to `workers` scoped threads.
///
/// Functions are optimized independently against the *pre-optimization*
/// program and analysis, and the results are merged in [`FuncId`] order —
/// so the output is byte-identical for any worker count (including 1).
/// `workers` is clamped to `1..=#functions`.
///
/// Unlike [`optimize_program`], this neither computes the analysis nor
/// validates the result; the pass-manager pipeline does both through the
/// analysis cache and the IR-validation pass.
pub fn optimize_program_with(
    prog: &mut Program,
    cfg: &CommOptConfig,
    analysis: &ProgramAnalysis,
    workers: usize,
) -> OptReport {
    let mut report = OptReport::default();
    if !cfg.enable_motion
        && !cfg.enable_blocking
        && !cfg.enable_redundancy_elim
        && cfg.escape == EscapeMode::Off
    {
        return report;
    }
    // The whole-program escape analysis is computed once, up front, against
    // the pre-optimization program — every worker reads the same verdicts,
    // which keeps the fan-out deterministic.
    let escape = match cfg.escape {
        EscapeMode::Off => None,
        EscapeMode::On => Some(EscapeAnalysis::compute(prog, &analysis.summaries)),
    };
    let escape = escape.as_ref();
    let fids: Vec<FuncId> = prog.iter_functions().map(|(id, _)| id).collect();
    let workers = workers.clamp(1, fids.len().max(1));
    let mut results: Vec<(FuncId, Function, FnReport)> = if workers <= 1 {
        fids.iter()
            .map(|&fid| optimize_function(prog, analysis, cfg, escape, fid))
            .collect()
    } else {
        let shared: &Program = prog;
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(FuncId, Function, FnReport)>> =
            Mutex::new(Vec::with_capacity(fids.len()));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&fid) = fids.get(i) else { break };
                        local.push(optimize_function(shared, analysis, cfg, escape, fid));
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        collected.into_inner().unwrap()
    };
    // Deterministic merge: arrival order depends on scheduling, FuncId
    // order does not.
    results.sort_by_key(|(fid, _, _)| *fid);
    for (fid, func, fr) in results {
        prog.replace_function(fid, func);
        report.functions.push(fr);
    }
    report
}

/// Runs the full communication optimization (placement analysis, selection,
/// transformation) over every function of `prog`, in place, computing the
/// whole-program analysis itself and fanning out across
/// [`default_workers`] threads.
///
/// With [`CommOptConfig::disabled`] this is a no-op (the paper's "simple"
/// compile).
///
/// # Panics
///
/// Panics if the optimizer produces invalid IR — a bug, guarded by the
/// validator.
pub fn optimize_program(prog: &mut Program, cfg: &CommOptConfig) -> OptReport {
    if !cfg.enable_motion
        && !cfg.enable_blocking
        && !cfg.enable_redundancy_elim
        && cfg.escape == EscapeMode::Off
    {
        return OptReport::default();
    }
    let analysis = earth_analysis::analyze(prog);
    let report = optimize_program_with(prog, cfg, &analysis, default_workers());
    earth_ir::validate_program(prog).expect("optimizer produced invalid IR");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;
    use earth_ir::{pretty, Basic};

    fn optimize(src: &str) -> (Program, OptReport) {
        let mut prog = compile(src).unwrap();
        let report = optimize_program(&mut prog, &CommOptConfig::default());
        (prog, report)
    }

    fn listing(prog: &Program, name: &str) -> String {
        pretty::print_function(
            prog,
            prog.function_by_name(name).unwrap(),
            &pretty::PrettyOptions {
                show_labels: false,
                ..Default::default()
            },
        )
    }

    fn count_remote_ops(prog: &Program, name: &str) -> (usize, usize, usize) {
        let f = prog.function(prog.function_by_name(name).unwrap());
        let (mut reads, mut writes, mut blks) = (0, 0, 0);
        for (_, b) in f.basic_stmts() {
            if let Some(acc) = b.deref_access() {
                if !f.deref_is_remote(acc.base) {
                    continue;
                }
                match b {
                    Basic::BlkMov { .. } => blks += 1,
                    _ if acc.is_write => writes += 1,
                    _ => reads += 1,
                }
            }
        }
        (reads, writes, blks)
    }

    /// Figure 3(c): distance's four remote reads become two pipelined reads
    /// at the top of the function (two fields: below the block threshold).
    #[test]
    fn fig3_distance_pipelines_two_reads() {
        let (prog, report) = optimize(
            r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#,
        );
        let t = report.total();
        assert_eq!(t.pipelined_reads, 2);
        assert_eq!(t.blocked_spans, 0);
        assert_eq!(t.reads_rewritten, 4);
        let (reads, writes, blks) = count_remote_ops(&prog, "distance");
        assert_eq!((reads, writes, blks), (2, 0, 0));
        let text = listing(&prog, "distance");
        // The two comm reads appear before any multiplication.
        let first_mul = text.find(" * ").unwrap();
        assert!(text.find("comm1 = p~>x").unwrap() < first_mul, "{text}");
        assert!(text.find("comm2 = p~>y").unwrap() < first_mul, "{text}");
    }

    /// Figure 4(d): scale_point (2 reads + 2 writes) blocks into one
    /// blkmov read, local accesses, and one blkmov write-back.
    #[test]
    fn fig4_scale_point_blocks_reads_and_writes() {
        let (prog, report) = optimize(
            r#"
            struct Point { double x; double y; };
            double scale(double v, double k) { return v * k; }
            void scale_point(Point *p, double k) {
                p->x = scale(p->x, k);
                p->y = scale(p->y, k);
            }
        "#,
        );
        let t = report.total();
        assert_eq!(t.blocked_spans, 1);
        assert_eq!(t.blocked_writebacks, 1);
        let (reads, writes, blks) = count_remote_ops(&prog, "scale_point");
        assert_eq!(
            (reads, writes, blks),
            (0, 0, 2),
            "{}",
            listing(&prog, "scale_point")
        );
        let text = listing(&prog, "scale_point");
        assert!(text.contains("blkmov(p, &bcomm1, sizeof(*p));"), "{text}");
        assert!(text.contains("blkmov(&bcomm1, p, sizeof(*p));"), "{text}");
        assert!(text.contains("bcomm1.x"), "{text}");
    }

    /// Figure 8: in the closest-point loop, reads of `t` (2 fields) are
    /// pipelined and hoisted above the loop, covering the post-loop reads
    /// of t->x/t->y (redundancy elimination); reads of `p` (3 fields)
    /// inside the loop are blocked; reads of `close` after the loop (2
    /// fields) are pipelined.
    #[test]
    fn fig8_closest_point_selection() {
        let (prog, report) = optimize(
            r#"
            struct Point { Point* next; double x; double y; };
            double f(double ax, double ay, double bx, double by) {
                return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
            }
            double closest(Point *head, Point *t, double epsilon) {
                Point *p;
                Point *close;
                double ax; double ay; double bx; double by;
                double dist; double cx; double tx; double diffx;
                double cy; double ty; double diffy;
                close = head;
                p = head;
                while (p != NULL) {
                    ax = p->x;
                    ay = p->y;
                    bx = t->x;
                    by = t->y;
                    dist = f(ax, ay, bx, by);
                    if (dist < epsilon) { close = p; }
                    p = p->next;
                }
                cx = close->x;
                tx = t->x;
                diffx = cx - tx;
                cy = close->y;
                ty = t->y;
                diffy = cy - ty;
                return diffx * diffx + diffy * diffy;
            }
        "#,
        );
        let text = listing(&prog, "closest");
        let t = report.total();
        // One blocked span (p in the loop), no write-back.
        assert_eq!(t.blocked_spans, 1, "{text}");
        assert_eq!(t.blocked_writebacks, 0, "{text}");
        // Pipelined reads: t->x, t->y (hoisted above the loop, reused
        // after it) and close->y hoisted above close->x; the read of
        // close->x stays in place (inserting it just before its only use
        // would be the identity transformation, which selection skips).
        assert_eq!(t.pipelined_reads, 3, "{text}");
        // t's reads are issued before the loop...
        let loop_pos = text.find("while").unwrap();
        assert!(text.find("comm1 = t~>x").unwrap() < loop_pos, "{text}");
        assert!(text.find("comm2 = t~>y").unwrap() < loop_pos, "{text}");
        // ... and the loop body uses the block buffer, including the
        // cursor advance.
        assert!(text.contains("p = bcomm1.next"), "{text}");
        assert!(text.contains("blkmov(p, &bcomm1, sizeof(*p));"), "{text}");
        // Post-loop reads of t reuse comm1/comm2 (no new t reads).
        let after_loop = &text[loop_pos..];
        assert!(!after_loop.contains("t~>x"), "{text}");
        assert!(!after_loop.contains("t~>y"), "{text}");
        // close is read remotely (pipelined) after the loop.
        assert!(after_loop.contains("close~>x"), "{text}");
    }

    /// The motion log names every decision with pre-optimization labels.
    #[test]
    fn motion_log_records_decisions() {
        use crate::motion::MotionKind;
        let (_prog, report) = optimize(
            r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#,
        );
        let log = &report.functions[0].motion;
        // Two reads issued, each merging the two loads of one field.
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|m| m.kind == MotionKind::RedundantReuse));
        assert!(log.iter().all(|m| m.from_labels.len() == 2));
        let rendered = log.render();
        assert!(rendered.contains("redundant-reuse p"), "{rendered}");
        assert!(rendered.contains("read of p~>x"), "{rendered}");

        // Blocking records the blkmov read and the write-back.
        let (_prog, report) = optimize(
            r#"
            struct Point { double x; double y; };
            double scale(double v, double k) { return v * k; }
            void scale_point(Point *p, double k) {
                p->x = scale(p->x, k);
                p->y = scale(p->y, k);
            }
        "#,
        );
        let log = &report
            .functions
            .iter()
            .find(|f| !f.motion.is_empty())
            .expect("scale_point moved something")
            .motion;
        let kinds: Vec<MotionKind> = log.iter().map(|m| m.kind).collect();
        assert_eq!(kinds, [MotionKind::BlockRead, MotionKind::BlockWriteback]);
        let read = &log.motions[0];
        assert_eq!(read.from_labels.len(), 4, "2 reads + 2 writes in the span");
        assert!(read.before);
    }

    /// The disabled configuration leaves the program untouched.
    #[test]
    fn disabled_config_is_identity() {
        let src = r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#;
        let mut prog = compile(src).unwrap();
        let before = pretty::print_program(&prog);
        let report = optimize_program(&mut prog, &CommOptConfig::disabled());
        assert_eq!(pretty::print_program(&prog), before);
        assert!(report.functions.is_empty());
    }

    /// Local pointers are never optimized (their accesses are not remote).
    #[test]
    fn local_pointers_untouched() {
        let (prog, report) = optimize(
            r#"
            struct Point { double x; double y; double z; };
            double f(Point local *p) {
                return p->x + p->y + p->z;
            }
        "#,
        );
        let t = report.total();
        assert_eq!(t.pipelined_reads + t.blocked_spans, 0);
        let text = listing(&prog, "f");
        assert!(text.contains("p->x"), "{text}");
    }

    /// Blocking inside a loop body with a pointer advance (the span
    /// terminal) writes back before the advance when writes exist.
    #[test]
    fn blocked_write_back_precedes_pointer_advance() {
        let (prog, _report) = optimize(
            r#"
            struct N { N* next; double a; double b; double c; };
            void bump(N *p) {
                while (p != NULL) {
                    p->a = p->a + 1.0;
                    p->b = p->b + 1.0;
                    p->c = p->c + 1.0;
                    p = p->next;
                }
            }
        "#,
        );
        let text = listing(&prog, "bump");
        let wb = text.find("blkmov(&bcomm1, p, sizeof(*p));").expect(&text);
        let advance = text.find("p = bcomm1.next").expect(&text);
        assert!(wb < advance, "write-back must use the old p:\n{text}");
        // No scalar remote ops remain in the loop.
        let (reads, writes, _blks) = count_remote_ops(&prog, "bump");
        assert_eq!((reads, writes), (0, 0), "{text}");
    }

    /// An aliased write between two reads prevents both blocking across it
    /// and redundancy elimination across it.
    #[test]
    fn aliased_write_blocks_motion() {
        let (prog, _report) = optimize(
            r#"
            struct P { double x; double y; double z; };
            double f(P *p) {
                P *q;
                double a; double b;
                q = p;
                a = p->x;
                q->x = 0.0;
                b = p->x;
                return a + b;
            }
        "#,
        );
        let text = listing(&prog, "f");
        // The second read of p->x must still be a remote read (it cannot
        // reuse the first: q->x = 0.0 may change it).
        let (reads, _w, blks) = count_remote_ops(&prog, "f");
        assert_eq!(blks, 0, "aliased q prevents blocking: {text}");
        assert_eq!(reads, 2, "both reads must hit memory: {text}");
    }

    /// Calls that touch the pointed-to region pin communication.
    #[test]
    fn interfering_call_pins_reads() {
        let (prog, _report) = optimize(
            r#"
            struct P { double x; double y; double z; };
            void poke(P *r) { r->x = 1.0; }
            double f(P *p) {
                double a; double b;
                a = p->x;
                poke(p);
                b = p->x;
                return a + b;
            }
        "#,
        );
        let (reads, _w, blks) = count_remote_ops(&prog, "f");
        assert_eq!(blks, 0);
        assert_eq!(reads, 2, "{}", listing(&prog, "f"));
    }

    /// Reads hoist out of conditionals (optimistic propagation): both
    /// branches read p->x, so one read suffices before the branch.
    #[test]
    fn reads_hoist_out_of_conditionals() {
        let (prog, report) = optimize(
            r#"
            struct P { double x; double y; };
            double f(P *p, int c) {
                double a;
                if (c > 0) {
                    a = p->x;
                } else {
                    a = p->x + 1.0;
                }
                return a;
            }
        "#,
        );
        assert_eq!(report.total().pipelined_reads, 1);
        let text = listing(&prog, "f");
        let if_pos = text.find("if").unwrap();
        assert!(text.find("comm1 = p~>x").unwrap() < if_pos, "{text}");
    }

    /// With speculation disabled, a read only present on one side of a
    /// branch is not hoisted above it.
    #[test]
    fn speculation_gate() {
        let src = r#"
            struct P { double x; double y; };
            double f(P *p, int c) {
                double a;
                a = 0.0;
                if (c > 0) {
                    a = p->x;
                }
                return a;
            }
        "#;
        let mut prog = compile(src).unwrap();
        let cfg = CommOptConfig {
            speculative_remote_ok: false,
            ..CommOptConfig::default()
        };
        optimize_program(&mut prog, &cfg);
        let text = listing(&prog, "f");
        let if_pos = text.find("if").unwrap();
        let read_pos = text.find("p~>x").unwrap();
        assert!(
            read_pos > if_pos,
            "read must stay inside the branch: {text}"
        );
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(clamp_workers(0), 1, "--workers 0 must not mean no pool");
        assert_eq!(clamp_workers(1), 1);
        let cores = default_workers();
        assert!(cores >= 1);
        assert_eq!(clamp_workers(usize::MAX), cores, "no oversubscription");
        assert_eq!(clamp_workers(cores), cores);
    }

    /// Feeding a measured profile changes blocking decisions: a hot
    /// two-word span (below the static threshold of three) blocks, and a
    /// never-executed three-word span stops blocking. Both flips are
    /// counted.
    #[test]
    fn profile_feedback_flips_blocking_decisions() {
        use std::sync::Arc;
        let src = r#"
            struct Pair { double x; double y; };
            struct Triple { double a; double b; double c; };
            double hot(Pair *p) {
                double s;
                double t;
                s = p->x;
                t = p->y;
                return s + t;
            }
            double cold(Triple *q) {
                double s;
                s = q->a + q->b + q->c;
                return s;
            }
            int main(int n) {
                double acc;
                Pair *pr;
                Triple *tr;
                int i;
                pr = malloc(sizeof(Pair));
                acc = 0.0;
                i = 0;
                while (i < n) {
                    acc = acc + hot(pr);
                    i = i + 1;
                }
                if (n < 0) {
                    tr = malloc(sizeof(Triple));
                    acc = acc + cold(tr);
                }
                return i;
            }
        "#;
        // Static decisions: hot's 2-field span is below the threshold of
        // three (pipelined); cold's 3-field span blocks.
        let mut static_prog = compile(src).unwrap();
        let static_report = optimize_program(&mut static_prog, &CommOptConfig::default());
        assert_eq!(static_report.total().blocked_spans, 1);
        assert_eq!(static_report.total().pgo_flips, 0);

        // "Measure": hot ran 50 times, cold never. Build the profile by
        // resolving real sites of the pre-optimization program, as the
        // instrumented run would.
        let prog = compile(src).unwrap();
        let mut profile = earth_profile::Profile::new();
        let mut seed = |fname: &str, execs: u64| {
            let (fid, f) = prog
                .iter_functions()
                .find(|(_, f)| f.name == fname)
                .unwrap();
            for (_, site) in earth_ir::assign_sites(fid, f).iter() {
                profile.record(
                    site.clone(),
                    earth_profile::SiteCounters {
                        execs,
                        bytes: execs * 8,
                        ..Default::default()
                    },
                );
            }
        };
        seed("hot", 50);
        seed("main", 50);
        let cfg = CommOptConfig {
            profile: Some(Arc::new(ProfileDb::new(profile))),
            ..CommOptConfig::default()
        };
        let mut pgo_prog = compile(src).unwrap();
        let report = optimize_program(&mut pgo_prog, &cfg);
        let t = report.total();
        // hot's pair span flipped to blocked; cold fell back to the
        // static model (no matched sites: its decision is unchanged, not
        // counted as a flip).
        assert_eq!(t.blocked_spans, 2, "hot now blocks, cold still does");
        assert_eq!(t.pgo_flips, 1);
        // Semantics preserved.
        earth_ir::validate_program(&pgo_prog).unwrap();
    }

    /// The prob-alias induction relaxation blocks a two-word list-walk
    /// span that the static threshold of three leaves pipelined; the
    /// motion carries a machine-checkable justification naming the loop,
    /// the advance statement, and the probability.
    #[test]
    fn prob_alias_unlocks_induction_blocking() {
        let src = r#"
            struct node { node* next; double v; };
            double sum(node *head) {
                node *p;
                double acc;
                acc = 0.0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#;
        // Binary mode: 2 accessed fields < threshold 3, nothing blocks.
        let mut binary = compile(src).unwrap();
        let b_report = optimize_program(&mut binary, &CommOptConfig::default());
        assert_eq!(b_report.total().blocked_spans, 0);
        assert_eq!(b_report.total().induction_blocks, 0);

        // Prob mode: p is a recognized induction of a `p != NULL` loop
        // (continue probability 0.9), so the cost model decides and one
        // blkmov replaces the two pipelined reads per iteration.
        let mut prob = compile(src).unwrap();
        let cfg = CommOptConfig {
            alias: AliasMode::Prob,
            ..CommOptConfig::default()
        };
        let p_report = optimize_program(&mut prob, &cfg);
        let t = p_report.total();
        assert_eq!(t.blocked_spans, 1, "{}", pretty::print_program(&prob));
        assert_eq!(t.induction_blocks, 1);
        let motion = p_report
            .functions
            .iter()
            .flat_map(|f| f.motion.iter())
            .find(|m| m.kind == MotionKind::BlockRead)
            .expect("a block-read motion");
        let j = motion
            .justification
            .as_ref()
            .expect("justified by induction");
        assert!((0.0..=1.0).contains(&j.prob));
        let text = listing(&prob, "sum");
        assert!(text.contains("blkmov(p, &bcomm1, sizeof(*p));"), "{text}");
        assert!(text.contains("p = bcomm1.next"), "{text}");
    }

    /// Escape mode proves a plain-malloc'd list node-local through the
    /// cursor's loads — the case locality inference forbids — so the walk
    /// emits *no* communication at all, and every upgrade is recorded in
    /// the motion log for the validator to re-derive.
    #[test]
    fn escape_mode_deletes_node_local_communication() {
        let src = r#"
            struct N { N* next; double v; };
            double walk(N *head) {
                N *p;
                double acc;
                acc = 0.0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
            double main() {
                N *head;
                N *n;
                int i;
                head = NULL;
                i = 0;
                while (i < 8) {
                    n = malloc(sizeof(N));
                    n->v = 1.0;
                    n->next = head;
                    head = n;
                    i = i + 1;
                }
                return walk(head);
            }
        "#;
        // Baseline: the cursor is MaybeRemote, so the walk communicates.
        let mut baseline = compile(src).unwrap();
        let b_report = optimize_program(&mut baseline, &CommOptConfig::default());
        assert!(b_report.total().reads_rewritten > 0);

        // Escape mode: the whole region is node-local; zero remote ops
        // remain and nothing needed to move.
        let mut escaped = compile(src).unwrap();
        let cfg = CommOptConfig {
            escape: EscapeMode::On,
            ..CommOptConfig::default()
        };
        let e_report = optimize_program(&mut escaped, &cfg);
        assert_eq!(e_report.total().reads_rewritten, 0);
        let (reads, writes, blks) = count_remote_ops(&escaped, "walk");
        assert_eq!(
            (reads, writes, blks),
            (0, 0, 0),
            "{}",
            listing(&escaped, "walk")
        );
        assert!(e_report
            .functions
            .iter()
            .all(|f| f.motion.motions.is_empty()));
        let walk_fid = escaped.function_by_name("walk").unwrap();
        let walk_log = &e_report
            .functions
            .iter()
            .find(|f| f.func == walk_fid)
            .unwrap()
            .motion;
        assert!(!walk_log.escapes.is_empty(), "upgrades must be recorded");
        assert!(!walk_log.is_empty(), "escape-only logs are not empty");
        assert!(walk_log.render().contains("escape-upgrade"));
    }

    /// Under a redundancy-only configuration the duplicate loads still
    /// collapse but nothing moves.
    #[test]
    fn redundancy_only_ablation() {
        let src = r#"
            struct Point { double x; double y; };
            double distance(Point *p) {
                double d;
                d = sqrt(p->x * p->x + p->y * p->y);
                return d;
            }
        "#;
        let mut prog = compile(src).unwrap();
        let cfg = CommOptConfig {
            enable_motion: false,
            enable_blocking: false,
            ..CommOptConfig::default()
        };
        let report = optimize_program(&mut prog, &cfg);
        assert_eq!(report.total().pipelined_reads, 2);
        assert_eq!(report.total().reads_rewritten, 4);
    }
}
