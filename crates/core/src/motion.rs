//! Motion log — a machine-checkable record of every communication motion.
//!
//! Selection ([`crate::selection`]) decides where each remote operation is
//! issued; this module records *what moved where and why* so that
//!
//! * the translation validator (`earth-lint`) can independently re-derive
//!   the safety of every motion against the **pre-optimization** program
//!   (the transformer keeps original statement labels, so `from_labels` and
//!   `to_label` remain meaningful after [`crate::transform::apply_plan`]),
//! * `fig10`-style experiment binaries can print an audit trail of the
//!   optimizer's decisions.

use earth_analysis::EscapeJustification;
use earth_ir::{FieldId, Label, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// What mechanism moved the communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotionKind {
    /// A split-phase scalar read issued earlier than its single original
    /// access (`comm = p~>f` motion, the paper's pipelining).
    PipelinedRead,
    /// A split-phase scalar read covering **several** original accesses
    /// (the hash table of already-issued operations merged them).
    RedundantReuse,
    /// A whole-struct (or partial-range) `blkmov` read fetched at the span
    /// anchor, replacing every direct read in a blocked span.
    BlockRead,
    /// The single `blkmov` write-back flushing a blocked span's buffered
    /// writes at the span end.
    BlockWriteback,
}

impl MotionKind {
    /// Short lower-case tag used in renderings.
    pub fn tag(self) -> &'static str {
        match self {
            MotionKind::PipelinedRead => "pipelined-read",
            MotionKind::RedundantReuse => "redundant-reuse",
            MotionKind::BlockRead => "block-read",
            MotionKind::BlockWriteback => "block-writeback",
        }
    }
}

/// The probabilistic evidence behind an induction-justified motion
/// (prob-alias mode): the span's pointer is a recognized loop induction,
/// and the blocking decision used the cost-only relaxation discounted by
/// the loop's continue probability.
///
/// This records *cost* evidence only — the span's safety was established
/// by the same binary rules as every other motion, and the validator
/// independently re-derives both halves: the induction claim against the
/// pre-optimization program (`ALP001`), the window against the binary
/// conflict rules (`ALP002` on top of the `PLC` codes), and the
/// probability range (`ALP003`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbJustification {
    /// The loop whose induction unlocked the relaxation.
    pub loop_label: Label,
    /// The unique `p = p->field` advance statement inside that loop.
    pub advance_label: Label,
    /// The chased link field.
    pub field: FieldId,
    /// The loop's continue probability used to discount the cost model
    /// (must be in `[0, 1]`).
    pub prob: f64,
}

/// One motion: a remote operation moved (or merged) by selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Motion {
    /// The pointer variable through which the remote region is accessed.
    pub base: VarId,
    /// Source-level name of `base` (for rendering without the function).
    pub base_name: String,
    /// The accessed field for scalar reads; `None` for block transfers,
    /// which move the whole struct (or a contiguous field range).
    pub field: Option<FieldId>,
    /// Labels of the original accesses this motion covers. These statements
    /// are rewritten to use the communication temporary or block buffer.
    pub from_labels: BTreeSet<Label>,
    /// The anchor statement the new communication is attached to.
    pub to_label: Label,
    /// `true` when the new operation is inserted *before* the anchor,
    /// `false` when it is inserted after.
    pub before: bool,
    /// The mechanism.
    pub kind: MotionKind,
    /// Human-readable justification recorded at decision time.
    pub reason: String,
    /// Probabilistic cost evidence, present only when the prob-alias
    /// induction relaxation (not the static cost model) made the blocking
    /// decision. `None` for every binary-mode motion.
    pub justification: Option<ProbJustification>,
}

impl Motion {
    /// `true` for motions that issue a read (everything except write-backs).
    pub fn is_read(&self) -> bool {
        self.kind != MotionKind::BlockWriteback
    }
}

impl fmt::Display for Motion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.from_labels.iter().map(|l| l.to_string()).collect();
        let field = match self.field {
            Some(fid) => format!("~>f{}", fid.0),
            None => String::new(),
        };
        write!(
            f,
            "{} {}{} [{}] -> {} {}: {}",
            self.kind.tag(),
            self.base_name,
            field,
            labels.join(", "),
            if self.before { "before" } else { "after" },
            self.to_label,
            self.reason
        )?;
        if let Some(j) = &self.justification {
            write!(
                f,
                " (induction {} = {}~>f{} @ {}, p={:.2})",
                self.base_name, self.base_name, j.field.0, j.advance_label, j.prob
            )?;
        }
        Ok(())
    }
}

/// The ordered list of motions selection performed for one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MotionLog {
    /// Motions in the order they were decided.
    pub motions: Vec<Motion>,
    /// Escape-analysis locality upgrades applied before placement
    /// (`--escape on` only; empty otherwise). Each one licensed the
    /// *removal* of communication rather than its motion, and is
    /// re-derived by `earth-lint` (ESC001–ESC003).
    pub escapes: Vec<EscapeJustification>,
}

impl MotionLog {
    /// Appends a motion.
    pub fn push(&mut self, m: Motion) {
        self.motions.push(m);
    }

    /// Iterates over the recorded motions.
    pub fn iter(&self) -> std::slice::Iter<'_, Motion> {
        self.motions.iter()
    }

    /// Number of recorded motions.
    pub fn len(&self) -> usize {
        self.motions.len()
    }

    /// `true` when nothing moved *and* no locality upgrade was applied.
    pub fn is_empty(&self) -> bool {
        self.motions.is_empty() && self.escapes.is_empty()
    }

    /// Multi-line rendering, one motion/upgrade per line (for `fig10`
    /// debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for j in &self.escapes {
            out.push_str(&format!("escape-upgrade {j}\n"));
        }
        for m in &self.motions {
            out.push_str(&m.to_string());
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a MotionLog {
    type Item = &'a Motion;
    type IntoIter = std::slice::Iter<'a, Motion>;
    fn into_iter(self) -> Self::IntoIter {
        self.motions.iter()
    }
}
