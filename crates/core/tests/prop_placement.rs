//! Property tests for the possible-placement analysis over generated
//! source-level programs: every tuple must refer to real remote reads,
//! carry positive frequency, and never name a killed base at points where
//! the base was just rewritten.
//!
//! The parameter space (`loads` × `stores` × `looped`) is small, so these
//! tests sweep it *exhaustively* instead of sampling it.

use std::collections::HashSet;

fn program(n_loads: u8, n_stores: u8, loop_body: bool) -> String {
    let mut body = String::new();
    for i in 0..n_loads % 4 {
        body.push_str(&format!(
            "    x = x + p->{};\n",
            ["a", "b"][(i % 2) as usize]
        ));
    }
    for i in 0..n_stores % 3 {
        body.push_str(&format!(
            "    p->{} = x + {i};\n",
            ["a", "b"][(i % 2) as usize]
        ));
    }
    let core = if loop_body {
        format!("    i = 0;\n    while (i < 5) {{\n{body}        i = i + 1;\n    }}\n")
    } else {
        body
    };
    format!(
        r#"
struct S {{ S* next; int a; int b; }};
int f(S *p) {{
    int x;
    int i;
    x = 0;
{core}    return x;
}}
"#
    )
}

fn all_cases() -> impl Iterator<Item = (u8, u8, bool)> {
    (0u8..8).flat_map(|loads| {
        (0u8..6).flat_map(move |stores| [false, true].map(move |looped| (loads, stores, looped)))
    })
}

#[test]
fn tuples_reference_real_reads() {
    for (loads, stores, looped) in all_cases() {
        let src = program(loads, stores, looped);
        let prog = earth_frontend::compile(&src).unwrap();
        let analysis = earth_analysis::analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let placement = earth_commopt::analyze_placement(
            f,
            analysis.function(fid),
            &earth_commopt::FreqModel::default(),
        );
        let remote_reads: HashSet<_> = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| b.deref_access().is_some_and(|a| !a.is_write))
            .map(|(l, _)| *l)
            .collect();
        let remote_writes: HashSet<_> = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| b.deref_access().is_some_and(|a| a.is_write))
            .map(|(l, _)| *l)
            .collect();
        let case = format!("loads={loads} stores={stores} looped={looped}");
        for set in placement.reads_before.values() {
            for t in set.iter() {
                assert!(t.freq > 0.0, "{case}");
                for l in &t.labels {
                    assert!(remote_reads.contains(l), "{case}");
                }
            }
        }
        for set in placement.writes_after.values() {
            for t in set.iter() {
                assert!(t.freq > 0.0, "{case}");
                for l in &t.labels {
                    assert!(remote_writes.contains(l), "{case}");
                }
            }
        }
    }
}

#[test]
fn optimization_is_idempotent_on_counts() {
    // Running the optimizer twice must not change the remote-operation
    // structure further (the second pass finds nothing new to move).
    for (loads, stores, looped) in all_cases() {
        if loads == 0 {
            continue; // mirror the original 1..8 range
        }
        let src = program(loads, stores, looped);
        let mut once = earth_frontend::compile(&src).unwrap();
        earth_commopt::optimize_program(&mut once, &earth_commopt::CommOptConfig::default());
        let count = |p: &earth_ir::Program| {
            let f = p.function(p.function_by_name("f").unwrap());
            f.basic_stmts()
                .iter()
                .filter(|(_, b)| b.deref_access().is_some())
                .count()
        };
        let after_one = count(&once);
        let mut twice = once.clone();
        let r =
            earth_commopt::optimize_program(&mut twice, &earth_commopt::CommOptConfig::default());
        assert_eq!(
            count(&twice),
            after_one,
            "loads={loads} stores={stores} looped={looped}: second pass changed ops: {:?}",
            r.total()
        );
    }
}
