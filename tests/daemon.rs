//! Concurrency and caching guarantees of the real daemon: `earthd`
//! serving the actual `earthc` pipeline over TCP.
//!
//! The two load-bearing acceptance properties live here:
//!
//! - a repeated identical compile is served from the cache with **zero**
//!   additional whole-program analyses, and
//! - N concurrent clients racing the same and different sources all
//!   receive artifacts byte-identical to a single-threaded compile,
//!   with a popular key compiled exactly once (no cache stampede).

use earthc::earth_serve::client::Client;
use earthc::earth_serve::proto::{Arg, CompileOptions, Response};
use earthc::earth_serve::server::{Server, ServerConfig, ServerHandle};
use earthc::earth_serve::Backend;
use earthc::serve::PipelineBackend;
use std::net::SocketAddr;
use std::thread::JoinHandle;

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle<PipelineBackend>, JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config, PipelineBackend::new()).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn sources() -> Vec<(String, String)> {
    ["count.ec", "distance.ec", "treesum.ec"]
        .iter()
        .map(|name| {
            let text =
                std::fs::read_to_string(format!("programs/{name}")).expect("programs/*.ec present");
            (name.to_string(), text)
        })
        .collect()
}

/// The single-threaded reference: compile directly through the backend,
/// no daemon, no cache.
fn reference_ir(source: &str) -> String {
    PipelineBackend::new()
        .compile(source, &CompileOptions::default())
        .expect("reference compile")
        .artifact
        .ir
}

fn compile_ir(client: &mut Client, source: &str) -> (String, bool) {
    match client.compile(source, CompileOptions::default()).unwrap() {
        Response::Compile { ir, cached, .. } => (ir, cached),
        other => panic!("{other:?}"),
    }
}

#[test]
fn repeated_compile_hits_cache_with_zero_new_analyses() {
    let (addr, _handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let (_, source) = sources().remove(0);

    let (ir_cold, cached_cold) = compile_ir(&mut client, &source);
    assert!(!cached_cold);
    let analyses_after_cold = client.stats().unwrap().analyses;
    assert!(analyses_after_cold > 0, "cold compile must analyze");

    for _ in 0..3 {
        let (ir_hit, cached_hit) = compile_ir(&mut client, &source);
        assert!(cached_hit, "identical compile must be served from cache");
        assert_eq!(ir_hit, ir_cold, "cached IR must be byte-identical");
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.analyses, analyses_after_cold,
        "cache hits must perform zero additional whole-program analyses"
    );
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 3);

    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_get_byte_identical_artifacts() {
    let (addr, _handle, join) = start(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    });
    let programs = sources();
    // 9 threads: three per source, racing both same-key and
    // different-key requests through the daemon at once.
    let threads: Vec<_> = (0..9)
        .map(|i| {
            let (name, source) = programs[i % programs.len()].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (ir, _) = compile_ir(&mut client, &source);
                (name, source, ir)
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (name, source, ir) in &results {
        assert_eq!(
            *ir,
            reference_ir(source),
            "{name}: daemon IR must match a single-threaded compile"
        );
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache.misses, 3,
        "three distinct sources -> exactly three compiles, no stampede"
    );
    assert_eq!(stats.cache.hits, 6);
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn stampede_on_one_popular_key_compiles_once() {
    let (addr, _handle, join) = start(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    });
    let (_, source) = sources().remove(2); // treesum: the slowest compile
    let irs: Vec<String> = (0..8)
        .map(|_| {
            let source = source.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                compile_ir(&mut client, &source).0
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let reference = reference_ir(&source);
    for ir in &irs {
        assert_eq!(*ir, reference);
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache.misses, 1,
        "popular key must compile exactly once"
    );
    assert_eq!(stats.cache.hits, 7);
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn run_and_pgo_flow_through_the_daemon() {
    let (addr, _handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let (_, source) = sources().remove(0); // count.ec: main(n) counts a list

    match client
        .run(
            &source,
            CompileOptions::default(),
            "main",
            2,
            vec![Arg::Int(5)],
        )
        .unwrap()
    {
        Response::Run { ret, cached, .. } => {
            assert_eq!(ret, "1");
            assert!(!cached, "first request compiles");
        }
        other => panic!("{other:?}"),
    }

    // PGO: measure, then a profile-guided compile keys on the profile.
    let profiled = CompileOptions {
        use_profile: true,
        ..CompileOptions::default()
    };
    let (_, cached) = match client.compile(&source, profiled.clone()).unwrap() {
        Response::Compile { ir, cached, .. } => (ir, cached),
        other => panic!("{other:?}"),
    };
    assert!(!cached);
    match client.pgo(&source, "main", 2, vec![Arg::Int(5)]).unwrap() {
        Response::Pgo {
            sites,
            merged_sites,
            ..
        } => {
            assert!(sites > 0, "instrumented run must record sites");
            assert_eq!(sites, merged_sites, "first merge");
        }
        other => panic!("{other:?}"),
    }
    // The profile changed, so a profile-guided compile re-keys (miss),
    // while the profile-independent artifact still hits.
    match client.compile(&source, profiled).unwrap() {
        Response::Compile { cached, .. } => assert!(!cached),
        other => panic!("{other:?}"),
    }
    match client.compile(&source, CompileOptions::default()).unwrap() {
        Response::Compile { cached, .. } => assert!(cached),
        other => panic!("{other:?}"),
    }

    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn daemon_survives_bad_programs() {
    let (addr, _handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    // A frontend error must come back as a server error, not kill the
    // daemon or poison the cache.
    assert!(client
        .compile("int main( {", CompileOptions::default())
        .is_err());
    let (_, source) = sources().remove(0);
    let (_, cached) = compile_ir(&mut client, &source);
    assert!(!cached);
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.cache.misses, 2, "failed compile counts as a miss");
    assert_eq!(stats.cache.entries, 1, "failed compile caches nothing");
    client.shutdown().unwrap();
    join.join().unwrap();
}
