//! CLI contract tests for `earthcc`: bad inputs must produce a
//! non-zero exit code and a single-line `error:` diagnostic on stderr —
//! never a panic with a backtrace.

use std::process::{Command, Output};

fn earthcc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_earthcc"))
        .args(args)
        .output()
        .expect("spawn earthcc")
}

/// Stderr must be exactly one `error:` line — no panic message, no
/// backtrace frames.
fn assert_single_error_line(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected failure, got success: {stderr}"
    );
    assert_eq!(out.status.code(), Some(1), "wrong exit code: {stderr}");
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "expected one diagnostic line: {stderr}");
    assert!(
        lines[0].starts_with("error: "),
        "diagnostic must start with `error: `: {stderr}"
    );
    assert!(
        lines[0].contains(needle),
        "diagnostic should mention {needle:?}: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "must not panic: {stderr}"
    );
}

#[test]
fn nonexistent_input_is_a_single_line_error() {
    for cmd in ["run", "pgo", "dump", "stats", "lint", "verify"] {
        let out = earthcc(&[cmd, "/no/such/dir/missing.ec"]);
        assert_single_error_line(&out, "cannot read `/no/such/dir/missing.ec`");
    }
}

#[test]
fn unreadable_profile_in_is_a_single_line_error() {
    let out = earthcc(&[
        "run",
        "programs/count.ec",
        "--arg",
        "3",
        "--profile-in",
        "/no/such/profile.json",
    ]);
    assert_single_error_line(&out, "cannot read `/no/such/profile.json`");
}

#[test]
fn malformed_profile_in_is_a_single_line_error() {
    let dir = std::env::temp_dir().join(format!("earthcc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let profile = dir.join("bad-profile.json");
    std::fs::write(&profile, "{ not a profile").unwrap();
    let out = earthcc(&[
        "run",
        "programs/count.ec",
        "--arg",
        "3",
        "--profile-in",
        profile.to_str().unwrap(),
    ]);
    assert_single_error_line(&out, "bad profile");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_without_addr_is_a_single_line_error() {
    let out = earthcc(&["client", "stats"]);
    assert_single_error_line(&out, "--addr");
}

#[test]
fn client_with_unreachable_addr_fails_cleanly() {
    // Port 1 on localhost: connection refused, not a panic.
    let out = earthcc(&["client", "ping", "--addr", "127.0.0.1:1"]);
    assert_single_error_line(&out, "cannot connect");
}

#[test]
fn client_compile_with_missing_file_is_a_single_line_error() {
    let out = earthcc(&[
        "client",
        "compile",
        "/no/such/file.ec",
        "--addr",
        "127.0.0.1:1",
    ]);
    assert_single_error_line(&out, "cannot read `/no/such/file.ec`");
}

#[test]
fn explain_unknown_code_is_a_single_line_error() {
    let out = earthcc(&["lint", "--explain", "NOSUCH999"]);
    assert_single_error_line(&out, "unknown diagnostic code `NOSUCH999`");
}

#[test]
fn bad_escape_mode_is_a_usage_error() {
    let out = earthcc(&["stats", "programs/orbit.ec", "--escape", "bogus"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.starts_with("error: --escape must be `on` or `off`"),
        "expected a leading `error:` line: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn verify_succeeds_with_escape_on() {
    let out = earthcc(&["verify", "programs/orbit.ec", "--escape", "on"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn missing_subcommand_and_bad_flags_use_exit_code_2() {
    assert_eq!(earthcc(&[]).status.code(), Some(2));
    assert_eq!(earthcc(&["run"]).status.code(), Some(2), "no input file");
    assert_eq!(
        earthcc(&["run", "programs/count.ec", "--bogus-flag"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn run_succeeds_on_a_real_program() {
    let out = earthcc(&["run", "programs/count.ec", "--arg", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("result: 1"), "{stdout}");
}
