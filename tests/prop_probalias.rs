//! Property-based tests of the probabilistic alias layer:
//!
//! 1. the loop pointer-induction recognizer never fires for a pointer that
//!    is reassigned from a non-field source anywhere in the loop body (and
//!    always fires for the clean single-advance walk), and
//! 2. prob-alias facts with every probability forced to {0, 1} drive the
//!    optimizer to byte-identical IR and motion logs as the binary
//!    analysis — probabilities degrade gracefully to the classical
//!    pipeline, they never change what is *expressible*.

use earthc::earth_analysis::{find_pointer_inductions, ProbFacts};
use earthc::earth_commopt::{
    analyze_placement, analyze_placement_with, apply_plan, select, select_with, CommOptConfig,
    FuncProfile,
};
use earthc::earth_ir::pretty;

/// One statement of a generated single-loop walk body.
#[derive(Debug, Clone, Copy)]
enum LoopStmt {
    /// `acc = acc + p-><f>;`
    Read(u8),
    /// `p-><f> = acc;`
    Write(u8),
    /// `p = p->next;` — the legitimate advance.
    Advance,
    /// `p = q;` — a non-field reassignment that must disqualify `p`.
    Poison,
}

fn loop_source(body: &[LoopStmt]) -> String {
    let field = |i: u8| ["a", "b"][(i % 2) as usize];
    let mut stmts = String::new();
    for s in body {
        match s {
            LoopStmt::Read(f) => {
                stmts.push_str(&format!("        acc = acc + p->{};\n", field(*f)))
            }
            LoopStmt::Write(f) => stmts.push_str(&format!("        p->{} = acc;\n", field(*f))),
            LoopStmt::Advance => stmts.push_str("        p = p->next;\n"),
            LoopStmt::Poison => stmts.push_str("        p = q;\n"),
        }
    }
    format!(
        r#"
struct S {{ S* next; int a; int b; }};
int walk(S *head, S *q) {{
    S *p;
    int acc;
    int i;
    acc = 0;
    i = 0;
    p = head;
    while (i < 10) {{
{stmts}        i = i + 1;
    }}
    return acc;
}}
"#
    )
}

#[test]
fn recognizer_never_fires_on_non_field_reassignment() {
    earth_qcheck::cases(200, |rng| {
        let n = 1 + rng.index(5);
        let body: Vec<LoopStmt> = (0..n)
            .map(|_| match rng.index(4) {
                0 => LoopStmt::Read(rng.u8()),
                1 => LoopStmt::Write(rng.u8()),
                2 => LoopStmt::Advance,
                _ => LoopStmt::Poison,
            })
            .collect();
        let advances = body
            .iter()
            .filter(|s| matches!(s, LoopStmt::Advance))
            .count();
        let poisons = body
            .iter()
            .filter(|s| matches!(s, LoopStmt::Poison))
            .count();
        let src = loop_source(&body);
        let prog = earthc::compile_earth_c(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let analysis = earthc::earth_analysis::analyze(&prog);
        let fid = prog.function_by_name("walk").unwrap();
        let f = prog.function(fid);
        let p = f.var_by_name("p").unwrap();
        let found = find_pointer_inductions(f, analysis.function(fid));
        let p_inductions = found.iter().filter(|i| i.var == p).count();
        if poisons > 0 || advances != 1 {
            assert_eq!(
                p_inductions, 0,
                "recognizer fired on a reassigned/multi-advance pointer:\n{src}"
            );
        } else {
            assert_eq!(p_inductions, 1, "clean single advance missed:\n{src}");
        }
    });
}

#[test]
fn forced_binary_probabilities_reproduce_binary_pipeline() {
    earth_qcheck::cases(120, |rng| {
        // Random mix including clean walks where prob mode WOULD act if the
        // probabilities were fractional.
        let n = 1 + rng.index(5);
        let body: Vec<LoopStmt> = (0..n)
            .map(|_| match rng.index(8) {
                0..=2 => LoopStmt::Read(rng.u8()),
                3 | 4 => LoopStmt::Write(rng.u8()),
                5 | 6 => LoopStmt::Advance,
                _ => LoopStmt::Poison,
            })
            .collect();
        let src = loop_source(&body);
        let prog = earthc::compile_earth_c(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let analysis = earthc::earth_analysis::analyze(&prog);
        let cfg = CommOptConfig::default();
        let fid = prog.function_by_name("walk").unwrap();
        let fa = analysis.function(fid);

        // Binary pipeline.
        let mut f_bin = prog.function(fid).clone();
        let placement_bin = analyze_placement(&f_bin, fa, &cfg.freq);
        let plan_bin = select(&prog, &mut f_bin, fa, &placement_bin, &cfg);
        apply_plan(&mut f_bin, &plan_bin);

        // Prob pipeline, facts forced to {0, 1}.
        let mut f_prob = prog.function(fid).clone();
        let forced = ProbFacts::compute(&f_prob, fa, None).force_binary();
        let placement_prob =
            analyze_placement_with(&f_prob, fa, &cfg.freq, None::<&FuncProfile>, Some(&forced));
        let plan_prob = select_with(
            &prog,
            &mut f_prob,
            fa,
            &placement_prob,
            &cfg,
            None,
            Some(&forced),
        );
        apply_plan(&mut f_prob, &plan_prob);

        assert_eq!(
            plan_bin.motion, plan_prob.motion,
            "motion logs diverged under forced-binary facts:\n{src}"
        );
        let render = |f: &earthc::earth_ir::Function| {
            let mut p2 = prog.clone();
            *p2.function_mut(fid) = f.clone();
            pretty::print_function_default(&p2, fid)
        };
        assert_eq!(
            render(&f_bin),
            render(&f_prob),
            "IR diverged under forced-binary facts:\n{src}"
        );
    });
}

/// The complement of the degeneration property: with its *fractional*
/// heuristic probabilities intact, prob-alias mode does act on the clean
/// null-tested walk (sanity that the force_binary test is not vacuous).
#[test]
fn fractional_probabilities_do_act_on_clean_walk() {
    // Two-word span: below the static blocking threshold of three, so only
    // the induction relaxation can block it.
    let src = r#"
struct S { S* next; int a; };
int walk(S *head) {
    S *p;
    int acc;
    acc = 0;
    p = head;
    while (p != NULL) {
        acc = acc + p->a;
        p = p->next;
    }
    return acc;
}
"#;
    let prog = earthc::compile_earth_c(src).unwrap();
    let analysis = earthc::earth_analysis::analyze(&prog);
    let cfg = CommOptConfig::default();
    let fid = prog.function_by_name("walk").unwrap();
    let fa = analysis.function(fid);
    let mut f = prog.function(fid).clone();
    let facts = ProbFacts::compute(&f, fa, None);
    let placement = analyze_placement_with(&f, fa, &cfg.freq, None::<&FuncProfile>, Some(&facts));
    let plan = select_with(&prog, &mut f, fa, &placement, &cfg, None, Some(&facts));
    assert!(
        plan.stats.induction_blocks > 0,
        "expected the induction relaxation to fire: {:?}",
        plan.stats
    );
    assert!(plan.motion.iter().any(|m| m.justification.is_some()));
}
