//! Figure 11: the paper shows extracts from the optimized benchmarks —
//! blocking in power (a) and perimeter (b), hoisting/redundancy
//! elimination in health (c). These tests check our optimizer produces
//! the same shapes on our benchmark sources.

use earthc::earth_commopt::CommOptConfig;
use earthc::earth_ir::pretty;
use earthc::earth_olden::{build_ir, by_name, Build};

fn optimized_listing(bench: &str, func: &str) -> String {
    let b = by_name(bench).unwrap();
    let (prog, _) = build_ir(&b, &Build::Optimized(CommOptConfig::default()));
    pretty::print_function(
        &prog,
        prog.function_by_name(func).unwrap(),
        &pretty::PrettyOptions {
            show_labels: false,
            ..Default::default()
        },
    )
}

/// Figure 11(a): power's per-node computation reads fields, computes, and
/// writes back — the optimizer blocks it (`blkmov(br, &bcomm, ...)` in,
/// field accesses through the buffer, `blkmov(&bcomm, br, ...)` out).
#[test]
fn fig11a_power_compute_branch_blocked() {
    let text = optimized_listing("power", "compute_branch");
    // With the partial-block-move extension the transfer may cover only
    // the contiguous range of accessed fields.
    assert!(
        text.contains("blkmov(br, &bcomm1,"),
        "block read of the branch node:\n{text}"
    );
    assert!(
        text.contains("blkmov(&bcomm1, br,"),
        "block write-back of the branch node:\n{text}"
    );
    assert!(text.contains("bcomm1."), "{text}");
}

/// Figure 11(b): perimeter's sum_adjacent blocks the quad node and reads
/// the color and child pointers from the buffer.
#[test]
fn fig11b_perimeter_sum_adjacent_blocked() {
    let text = optimized_listing("perimeter", "sum_adjacent");
    assert!(
        text.contains("blkmov(adj, &bcomm1,"),
        "block read of the quad:\n{text}"
    );
    // The double color read of the paper's extract (temp_110/temp_112)
    // collapses into one hoisted read...
    assert!(text.contains("comm1 = adj~>color"), "{text}");
    // ... and the child pointers come from the block buffer.
    assert!(text.contains("bcomm1.nw"), "{text}");
}

/// Figure 11(c): health's check_patients_inside hoists the repeated
/// village->hosp.free_personnel read into a comm temporary (the paper's
/// comm6) and pipelines the list-node reads.
#[test]
fn fig11c_health_check_patients_inside() {
    let text = optimized_listing("health", "check_patients_inside");
    // The free_personnel updates go through a temporary rather than
    // re-reading the village every time on the treated path.
    assert!(
        text.contains("= village~>hosp.free_personnel"),
        "a single hoisted read of free_personnel:\n{text}"
    );
    let first = text.find("village~>hosp.free_personnel").unwrap();
    let rest = &text[first + 1..];
    // At most one further mention as a *write* target; no repeated reads.
    let reads_after = rest.matches("= village~>hosp.free_personnel").count();
    assert!(
        reads_after <= 1,
        "free_personnel should not be re-read every iteration:\n{text}"
    );
    // The list traversal fields are pipelined into comm temps.
    assert!(text.contains("comm"), "{text}");
}

/// The optimizer's report on the whole suite matches the paper's narrative:
/// power and perimeter are dominated by blocking, health by pipelining and
/// redundancy elimination.
#[test]
fn fig11_suite_narrative() {
    let power = {
        let b = by_name("power").unwrap();
        build_ir(&b, &Build::Optimized(CommOptConfig::default())).1
    };
    assert!(power.total().blocked_spans > 0, "power blocks");
    let health = {
        let b = by_name("health").unwrap();
        build_ir(&b, &Build::Optimized(CommOptConfig::default())).1
    };
    assert!(
        health.total().pipelined_reads > health.total().blocked_spans,
        "health is dominated by pipelined reads"
    );
}
