//! Property-based tests of the whole-program escape analysis:
//!
//! 1. with `--escape off` (the default) the optimizer's output is
//!    byte-identical to the pre-escape per-function pipeline over random
//!    list programs — threading the (absent) analysis through the fan-out
//!    changes nothing,
//! 2. escape verdicts and the escape-optimized IR are worker-count
//!    invariant — the whole-program analysis is computed once before the
//!    fan-out, so every worker reads the same verdicts, and
//! 3. forcing every region to `Shared` yields an analysis with zero
//!    upgrades whose `apply` is a no-op, reproducing the baseline IR and
//!    `MotionLog`s exactly — escape mode degrades gracefully to the
//!    classical pipeline, it never changes what is *expressible*.

use earthc::earth_analysis::{self, EscapeAnalysis};
use earthc::earth_commopt::{
    analyze_placement, apply_plan, optimize_program_with, select, CommOptConfig, EscapeMode,
    MotionLog, SelectionStats,
};
use earthc::earth_ir::pretty;

/// One statement of a generated list-walk body.
#[derive(Debug, Clone, Copy)]
enum LoopStmt {
    /// `acc = acc + c-><f>;`
    Read(u8),
    /// `c-><f> = acc;`
    Write(u8),
    /// `c = c->next;`
    Advance,
}

/// How `main` allocates the list cells — the knob that decides whether the
/// region stays node-local or is genuinely distributed.
#[derive(Debug, Clone, Copy)]
enum Alloc {
    /// `malloc(sizeof(node))` — node-local by construction.
    Plain,
    /// `malloc_on(i % num_nodes(), sizeof(node))` — scattered.
    Scattered,
}

/// How `main` invokes the walk.
#[derive(Debug, Clone, Copy)]
enum CallSite {
    /// `walk(head)` — same node as the builder.
    Unplaced,
    /// `walk(head) @ OWNER_OF(head)` — owner-confined.
    AtOwner,
    /// `walk(head) @ 1` — placed on a fixed node.
    AtNode,
}

fn program_source(alloc: Alloc, call: CallSite, body: &[LoopStmt]) -> String {
    let field = |i: u8| ["a", "b"][(i % 2) as usize];
    let mut stmts = String::new();
    for s in body {
        match s {
            LoopStmt::Read(f) => {
                stmts.push_str(&format!("        acc = acc + c->{};\n", field(*f)))
            }
            LoopStmt::Write(f) => stmts.push_str(&format!("        c->{} = acc;\n", field(*f))),
            LoopStmt::Advance => stmts.push_str("        c = c->next;\n"),
        }
    }
    let malloc = match alloc {
        Alloc::Plain => "malloc(sizeof(node))",
        Alloc::Scattered => "malloc_on(i % num_nodes(), sizeof(node))",
    };
    let invoke = match call {
        CallSite::Unplaced => "walk(head)",
        CallSite::AtOwner => "walk(head) @ OWNER_OF(head)",
        CallSite::AtNode => "walk(head) @ 1",
    };
    format!(
        r#"
struct node {{ node* next; int a; int b; }};
int walk(node *c) {{
    int acc;
    int i;
    acc = 0;
    i = 0;
    while (c != NULL) {{
{stmts}        i = i + 1;
        c = c->next;
    }}
    return acc + i;
}}
int main(int n) {{
    node *head;
    node *q;
    int i;
    int r;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {{
        q = {malloc};
        q->a = i;
        q->b = i + 1;
        q->next = head;
        head = q;
    }}
    r = {invoke};
    return r;
}}
"#
    )
}

fn random_source(rng: &mut earth_qcheck::Rng) -> String {
    let alloc = if rng.index(2) == 0 {
        Alloc::Plain
    } else {
        Alloc::Scattered
    };
    let call = match rng.index(3) {
        0 => CallSite::Unplaced,
        1 => CallSite::AtOwner,
        _ => CallSite::AtNode,
    };
    let n = rng.index(4);
    let body: Vec<LoopStmt> = (0..n)
        .map(|_| match rng.index(3) {
            0 => LoopStmt::Read(rng.u8()),
            1 => LoopStmt::Write(rng.u8()),
            _ => LoopStmt::Advance,
        })
        .collect();
    program_source(alloc, call, &body)
}

/// Optimizes `src` with the given config and worker count; returns the
/// printed IR, the per-function motion logs, and the summed counters.
fn optimize(
    src: &str,
    cfg: &CommOptConfig,
    workers: usize,
) -> (String, Vec<MotionLog>, SelectionStats) {
    let mut prog = earthc::compile_earth_c(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    earth_analysis::infer_locality(&mut prog);
    let analysis = earth_analysis::analyze(&prog);
    let report = optimize_program_with(&mut prog, cfg, &analysis, workers);
    let motions = report.functions.iter().map(|f| f.motion.clone()).collect();
    (pretty::print_program(&prog), motions, report.total())
}

/// Property 1: with escape off, `optimize_program_with` is byte-identical
/// to the pre-escape per-function replay (placement → selection → apply).
#[test]
fn escape_off_matches_per_function_replay() {
    earth_qcheck::cases(100, |rng| {
        let src = random_source(rng);
        let cfg = CommOptConfig::default();
        assert_eq!(cfg.escape, EscapeMode::Off);
        let (ir, _, _) = optimize(&src, &cfg, 1);

        // Manual per-function replay, no escape analysis anywhere.
        let mut prog = earthc::compile_earth_c(&src).unwrap();
        earth_analysis::infer_locality(&mut prog);
        let analysis = earth_analysis::analyze(&prog);
        let fids: Vec<_> = prog.iter_functions().map(|(fid, _)| fid).collect();
        for fid in fids {
            let fa = analysis.function(fid);
            let mut f = prog.function(fid).clone();
            let placement = analyze_placement(&f, fa, &cfg.freq);
            let plan = select(&prog, &mut f, fa, &placement, &cfg);
            apply_plan(&mut f, &plan);
            *prog.function_mut(fid) = f;
        }
        assert_eq!(
            ir,
            pretty::print_program(&prog),
            "escape-off output diverged from the per-function replay:\n{src}"
        );
    });
}

/// Property 2: escape verdicts and the escape-optimized output do not
/// depend on the optimizer's worker count.
#[test]
fn escape_pipeline_is_worker_count_invariant() {
    earth_qcheck::cases(60, |rng| {
        let src = random_source(rng);
        let cfg = CommOptConfig {
            escape: EscapeMode::On,
            ..CommOptConfig::default()
        };
        let (ir1, motions1, stats1) = optimize(&src, &cfg, 1);
        let (ir3, motions3, stats3) = optimize(&src, &cfg, 3);
        assert_eq!(ir1, ir3, "IR differs between 1 and 3 workers:\n{src}");
        assert_eq!(
            motions1, motions3,
            "motion logs (incl. escape justifications) differ:\n{src}"
        );
        assert_eq!(stats1, stats3, "selection stats differ:\n{src}");
    });
}

/// Property 3: the all-Shared analysis has zero upgrades, its `apply` is a
/// no-op, and the resulting pipeline reproduces the baseline exactly.
#[test]
fn forced_shared_reproduces_baseline() {
    earth_qcheck::cases(100, |rng| {
        let src = random_source(rng);
        let cfg = CommOptConfig::default();
        let (baseline_ir, baseline_motions, _) = optimize(&src, &cfg, 1);

        let mut prog = earthc::compile_earth_c(&src).unwrap();
        earth_analysis::infer_locality(&mut prog);
        let analysis = earth_analysis::analyze(&prog);
        let forced = EscapeAnalysis::forced_shared(&prog, &analysis.summaries);
        assert_eq!(forced.total_upgrades(), 0, "forced-shared upgraded:\n{src}");

        let fids: Vec<_> = prog.iter_functions().map(|(fid, _)| fid).collect();
        let mut motions = Vec::new();
        for fid in fids {
            let fa = analysis.function(fid);
            let mut f = prog.function(fid).clone();
            let escapes = forced.apply(fid, &mut f);
            assert!(escapes.is_empty(), "forced-shared apply acted:\n{src}");
            let placement = analyze_placement(&f, fa, &cfg.freq);
            let plan = select(&prog, &mut f, fa, &placement, &cfg);
            apply_plan(&mut f, &plan);
            let mut log = plan.motion.clone();
            log.escapes = escapes;
            motions.push(log);
            *prog.function_mut(fid) = f;
        }
        assert_eq!(
            baseline_ir,
            pretty::print_program(&prog),
            "forced-shared IR diverged from baseline:\n{src}"
        );
        assert_eq!(
            baseline_motions, motions,
            "forced-shared motion logs diverged from baseline:\n{src}"
        );
    });
}
