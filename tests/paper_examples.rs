//! Golden tests for every worked example in the paper (Figures 1, 3, 4,
//! 7, and 8). These pin the reproduction to the paper's own listings.

use earthc::earth_analysis;
use earthc::earth_commopt::{analyze_placement, optimize_program, CommOptConfig, FreqModel};
use earthc::earth_ir::{pretty, StmtKind};
use earthc::{Pipeline, Value};

fn listing(prog: &earthc::Program, name: &str) -> String {
    pretty::print_function(
        prog,
        prog.function_by_name(name).unwrap(),
        &pretty::PrettyOptions {
            show_labels: false,
            ..Default::default()
        },
    )
}

/// Figure 1(a): the iterative `count` with a forall loop, shared counter,
/// and an `@OWNER_OF` call — must compile and produce the right count.
#[test]
fn fig1a_count_iterative() {
    let src = r#"
        struct node { node* next; int value; };
        int equal_node(node local *p, node *q) {
            return p->value == q->value;
        }
        int count(node *head, node *x) {
            shared int cnt;
            node *p;
            writeto(&cnt, 0);
            forall (p = head; p != NULL; p = p->next) {
                if (equal_node(p, x) @ OWNER_OF(p)) {
                    addto(&cnt, 1);
                }
            }
            return valueof(&cnt);
        }
        int main(int n) {
            node *head;
            node *q;
            node *x;
            int i;
            head = NULL;
            for (i = 0; i < n; i = i + 1) {
                q = malloc_on(i % num_nodes(), sizeof(node));
                q->value = i % 3;
                q->next = head;
                head = q;
            }
            x = malloc(sizeof(node));
            x->value = 0;
            return count(head, x);
        }
    "#;
    for nodes in [1u16, 4] {
        let r = Pipeline::new()
            .nodes(nodes)
            .run_source(src, &[Value::Int(9)])
            .unwrap();
        // values 0,1,2 repeating: three zeros among nine.
        assert_eq!(r.ret, Value::Int(3), "{nodes} nodes");
    }
}

/// Figure 1(b): the recursive `count_rec` with a parallel sequence.
#[test]
fn fig1b_count_recursive() {
    let src = r#"
        struct node { node* next; int value; };
        int equal_node(node *p, node local *q) {
            return p->value == q->value;
        }
        int count_rec(node *head, node *x) {
            int c1;
            int c2;
            if (head != NULL) {
                {^
                    c1 = equal_node(head, x) @ OWNER_OF(x);
                    c2 = count_rec(head->next, x);
                ^}
                return c1 + c2;
            } else {
                return 0;
            }
        }
        int main(int n) {
            node *head;
            node *q;
            node *x;
            int i;
            head = NULL;
            for (i = 0; i < n; i = i + 1) {
                q = malloc_on(i % num_nodes(), sizeof(node));
                q->value = i % 3;
                q->next = head;
                head = q;
            }
            x = malloc_on(num_nodes() - 1, sizeof(node));
            x->value = 1;
            return count_rec(head, x);
        }
    "#;
    let r = Pipeline::new()
        .nodes(3)
        .run_source(src, &[Value::Int(9)])
        .unwrap();
    assert_eq!(r.ret, Value::Int(3));
    assert!(r.stats.remote_calls > 0, "equal_node runs at OWNER_OF(x)");
}

const DISTANCE: &str = r#"
    struct Point { double x; double y; };
    double distance(Point *p) {
        double d;
        d = sqrt(p->x * p->x + p->y * p->y);
        return d;
    }
"#;

/// Figure 3: the four remote reads of `distance` become two pipelined
/// reads placed at the top of the function.
#[test]
fn fig3_distance_golden() {
    let mut prog = earthc::compile_earth_c(DISTANCE).unwrap();
    // (b): simplification produced four remote reads.
    let f = prog.function(prog.function_by_name("distance").unwrap());
    assert_eq!(
        f.basic_stmts()
            .iter()
            .filter(|(_, b)| b.deref_access().is_some())
            .count(),
        4
    );
    optimize_program(&mut prog, &CommOptConfig::default());
    let text = listing(&prog, "distance");
    // (c): two comm reads, each original load now uses a temp.
    assert!(text.contains("comm1 = p~>x"), "{text}");
    assert!(text.contains("comm2 = p~>y"), "{text}");
    assert_eq!(text.matches("~>").count(), 2, "{text}");
}

/// Figure 4: scale_point's reads move up, writes move down, and the whole
/// struct is blocked: one blkmov in, local computation, one blkmov out.
#[test]
fn fig4_scale_point_golden() {
    let src = r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        void scale_point(Point *p, double k) {
            p->x = scale(p->x, k);
            p->y = scale(p->y, k);
        }
    "#;
    let mut prog = earthc::compile_earth_c(src).unwrap();
    optimize_program(&mut prog, &CommOptConfig::default());
    let text = listing(&prog, "scale_point");
    let read = text.find("blkmov(p, &bcomm1, sizeof(*p));").expect(&text);
    let write = text.find("blkmov(&bcomm1, p, sizeof(*p));").expect(&text);
    assert!(read < write);
    // All field traffic goes through the local buffer.
    assert!(text.contains("bcomm1.x"), "{text}");
    assert!(text.contains("bcomm1.y"), "{text}");
    assert_eq!(text.matches("~>").count(), 0, "{text}");
}

const CLOSEST: &str = r#"
    struct Point { Point* next; double x; double y; };
    double f(double ax, double ay, double bx, double by) {
        return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
    }
    double closest(Point *head, Point *t, double epsilon) {
        Point *p;
        Point *close;
        double ax; double ay; double bx; double by;
        double dist; double cx; double tx; double diffx;
        double cy; double ty; double diffy;
        close = head;
        p = head;
        while (p != NULL) {
            ax = p->x;
            ay = p->y;
            bx = t->x;
            by = t->y;
            dist = f(ax, ay, bx, by);
            if (dist < epsilon) { close = p; }
            p = p->next;
        }
        cx = close->x;
        tx = t->x;
        diffx = cx - tx;
        cy = close->y;
        ty = t->y;
        diffy = cy - ty;
        return diffx * diffx + diffy * diffy;
    }
"#;

/// Figure 7: RemoteReads propagation for the closest-point loop. At the
/// top of the function the `t` tuples carry frequency 11 (1 use after the
/// loop + 10 for the loop) and cover both the in-loop and post-loop
/// accesses; the `p` and `close` tuples are killed by the loop's writes.
#[test]
fn fig7_remote_read_sets() {
    let prog = earthc::compile_earth_c(CLOSEST).unwrap();
    let fid = prog.function_by_name("closest").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let placement = analyze_placement(f, analysis.function(fid), &FreqModel::default());

    let first_label = match &f.body.kind {
        StmtKind::Seq(ss) => ss[0].label,
        _ => panic!(),
    };
    let set = &placement.reads_before[&first_label];
    let t = f.var_by_name("t").unwrap();
    let p = f.var_by_name("p").unwrap();
    let close = f.var_by_name("close").unwrap();
    let sid = prog.struct_by_name("Point").unwrap();
    let fx = prog.struct_def(sid).field_by_name("x").unwrap();
    let fy = prog.struct_def(sid).field_by_name("y").unwrap();

    // The paper's S1 set: {(t->x, 11, S11:S4), (t->y, 11, S12:S7)}.
    let tx = set.get(t, fx).expect("t->x tuple at function top");
    assert_eq!(tx.freq, 11.0);
    assert_eq!(tx.labels.len(), 2, "loop read + post-loop read");
    let ty = set.get(t, fy).expect("t->y tuple at function top");
    assert_eq!(ty.freq, 11.0);
    // p and close are written by the loop: their tuples do not reach S1.
    assert!(set.get(p, fx).is_none());
    assert!(set.get(close, fx).is_none());

    // Inside the loop body, the per-iteration set before the first body
    // statement contains the p tuples (frequency 1 each).
    let mut body_first = None;
    f.body.walk(&mut |s| {
        if let StmtKind::While { body, .. } = &s.kind {
            if let StmtKind::Seq(ss) = &body.kind {
                body_first = Some(ss[0].label);
            }
        }
    });
    let body_set = &placement.reads_before[&body_first.unwrap()];
    assert!(body_set.get(p, fx).is_some());
    assert_eq!(body_set.get(p, fx).unwrap().freq, 1.0);
}

/// Figure 8: communication selection on the same program — t's reads are
/// pipelined above the loop, p's three fields are blocked in the body.
#[test]
fn fig8_selection_golden() {
    let mut prog = earthc::compile_earth_c(CLOSEST).unwrap();
    optimize_program(&mut prog, &CommOptConfig::default());
    let text = listing(&prog, "closest");
    let loop_pos = text.find("while").unwrap();
    assert!(text.find("comm1 = t~>x").unwrap() < loop_pos, "{text}");
    assert!(text.find("comm2 = t~>y").unwrap() < loop_pos, "{text}");
    assert!(text.contains("blkmov(p, &bcomm1, sizeof(*p));"), "{text}");
    assert!(text.contains("p = bcomm1.next"), "{text}");
    // The post-loop reads of t reuse the hoisted temps.
    let after = &text[loop_pos..];
    assert!(!after.contains("t~>"), "{text}");
}
