//! Parallel-vs-sequential determinism of the optimizer fan-out.
//!
//! `optimize_program_with` distributes per-function placement + selection
//! across scoped worker threads and merges the results in `FuncId` order.
//! These tests pin the contract: for every sample program, paper-figure
//! example, and Olden kernel, optimizing with 1 worker and with N workers
//! must produce byte-identical pretty-printed IR, identical `MotionLog`s,
//! and identical `SelectionStats`.

use earthc::earth_analysis;
use earthc::earth_commopt::{
    optimize_program_with, AliasMode, CommOptConfig, MotionLog, SelectionStats,
};
use earthc::earth_ir::pretty;

/// Paper worked examples (Figures 3, 4, and 8).
const PAPER_FIGURES: &[(&str, &str)] = &[
    (
        "fig3_distance",
        r#"
        struct Point { double x; double y; };
        double distance(Point *p) {
            double d;
            d = sqrt(p->x * p->x + p->y * p->y);
            return d;
        }
    "#,
    ),
    (
        "fig4_scale_point",
        r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        void scale_point(Point *p, double k) {
            p->x = scale(p->x, k);
            p->y = scale(p->y, k);
        }
    "#,
    ),
    (
        "fig8_closest_point",
        r#"
        struct Point { Point* next; double x; double y; };
        double f(double ax, double ay, double bx, double by) {
            return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
        }
        double closest(Point *head, Point *t, double epsilon) {
            Point *p;
            Point *close;
            double ax; double ay; double bx; double by;
            double dist; double cx; double tx; double diffx;
            double cy; double ty; double diffy;
            close = head;
            p = head;
            while (p != NULL) {
                ax = p->x;
                ay = p->y;
                bx = t->x;
                by = t->y;
                dist = f(ax, ay, bx, by);
                if (dist < epsilon) { close = p; }
                p = p->next;
            }
            cx = close->x;
            tx = t->x;
            diffx = cx - tx;
            cy = close->y;
            ty = t->y;
            diffy = cy - ty;
            return diffx * diffx + diffy * diffy;
        }
    "#,
    ),
];

/// Optimizes `src` with the given config and worker count; returns the
/// printed IR, the per-function motion logs, and the summed selection
/// counters.
fn optimize_with_workers_cfg(
    src: &str,
    cfg: &CommOptConfig,
    workers: usize,
) -> (String, Vec<MotionLog>, SelectionStats) {
    let mut prog = earthc::compile_earth_c(src).expect("compiles");
    earth_analysis::infer_locality(&mut prog);
    let analysis = earth_analysis::analyze(&prog);
    let report = optimize_program_with(&mut prog, cfg, &analysis, workers);
    let motions = report.functions.iter().map(|f| f.motion.clone()).collect();
    (pretty::print_program(&prog), motions, report.total())
}

fn optimize_with_workers(src: &str, workers: usize) -> (String, Vec<MotionLog>, SelectionStats) {
    optimize_with_workers_cfg(src, &CommOptConfig::default(), workers)
}

fn assert_deterministic(name: &str, src: &str) {
    let (ir1, motions1, stats1) = optimize_with_workers(src, 1);
    for workers in [2usize, 4, 8] {
        let (ir_n, motions_n, stats_n) = optimize_with_workers(src, workers);
        assert_eq!(
            ir1, ir_n,
            "{name}: IR differs between 1 and {workers} workers"
        );
        assert_eq!(
            motions1, motions_n,
            "{name}: motion logs differ between 1 and {workers} workers"
        );
        assert_eq!(
            stats1, stats_n,
            "{name}: selection stats differ between 1 and {workers} workers"
        );
    }
}

#[test]
fn sample_programs_are_deterministic() {
    let mut checked = 0;
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ec") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        assert_deterministic(&path.display().to_string(), &src);
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the sample programs, found {checked}"
    );
}

#[test]
fn paper_figures_are_deterministic() {
    for (name, src) in PAPER_FIGURES {
        assert_deterministic(name, src);
    }
}

#[test]
fn olden_kernels_are_deterministic() {
    let suite = earthc::earth_olden::suite();
    assert_eq!(suite.len(), 5, "all five Olden kernels");
    for bench in suite {
        assert_deterministic(bench.name, bench.source);
    }
}

/// Profile-guided optimization is worker-count-invariant too: feeding the
/// same measured profile, 1 worker and N workers must produce
/// byte-identical optimized IR and identical selection counters
/// (including `pgo_flips`).
#[test]
fn pgo_output_is_worker_invariant() {
    use earthc::earth_olden::Preset;
    use earthc::earth_sim::{CodegenOptions, Machine, MachineConfig};
    use earthc::{Profile, ProfileDb};
    use std::sync::Arc;
    for bench in earthc::earth_olden::suite() {
        // Instrumented run: the simple build with site recording.
        let prog = earthc::compile_earth_c(bench.source).expect("compiles");
        let opts = CodegenOptions {
            record_sites: true,
            ..CodegenOptions::default()
        };
        let compiled = earthc::earth_sim::compile(&prog, opts).expect("codegen");
        let entry = compiled.function_by_name("main").expect("main");
        let mut m = Machine::new(MachineConfig::with_nodes(4));
        let r = m
            .run(&compiled, entry, &(bench.args)(Preset::Test))
            .expect("instrumented run");
        let db = Arc::new(ProfileDb::new(Profile::from_trace(
            &compiled,
            &r.site_trace,
        )));
        let cfg = CommOptConfig {
            profile: Some(db),
            ..CommOptConfig::default()
        };
        let opt = |workers: usize| {
            let mut prog = earthc::compile_earth_c(bench.source).expect("compiles");
            let analysis = earth_analysis::analyze(&prog);
            let report = optimize_program_with(&mut prog, &cfg, &analysis, workers);
            (pretty::print_program(&prog), report.total())
        };
        let (ir1, stats1) = opt(1);
        // Every Olden kernel's measured profile flips at least one
        // selection decision at this size, so this exercises the PGO path
        // for real rather than vacuously agreeing on static choices.
        assert!(stats1.pgo_flips > 0, "{}: no decisions flipped", bench.name);
        for workers in [2usize, 8] {
            let (ir_n, stats_n) = opt(workers);
            assert_eq!(
                ir1, ir_n,
                "{}: PGO IR differs between 1 and {workers} workers",
                bench.name
            );
            assert_eq!(
                stats1, stats_n,
                "{}: PGO stats differ between 1 and {workers} workers",
                bench.name
            );
        }
    }
}

/// Prob-alias mode is worker-count-invariant too: the probability facts
/// are recomputed per function from the IR alone, so distributing
/// placement + selection across threads must not perturb them. Sweeps the
/// sample programs and every Olden kernel; health must exercise the
/// induction relaxation for real (non-zero `induction_blocks`).
#[test]
fn prob_alias_output_is_worker_invariant() {
    let cfg = CommOptConfig {
        alias: AliasMode::Prob,
        ..CommOptConfig::default()
    };
    let mut sources: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("ec") {
            let src = std::fs::read_to_string(&path).unwrap();
            sources.push((path.display().to_string(), src));
        }
    }
    for bench in earthc::earth_olden::suite() {
        sources.push((bench.name.to_string(), bench.source.to_string()));
    }
    for (name, src) in &sources {
        let (ir1, motions1, stats1) = optimize_with_workers_cfg(src, &cfg, 1);
        if name == "health" {
            assert!(
                stats1.induction_blocks > 0,
                "health: prob path not exercised"
            );
        }
        for workers in [2usize, 8] {
            let (ir_n, motions_n, stats_n) = optimize_with_workers_cfg(src, &cfg, workers);
            assert_eq!(
                ir1, ir_n,
                "{name}: prob IR differs between 1 and {workers} workers"
            );
            assert_eq!(
                motions1, motions_n,
                "{name}: prob motion logs differ between 1 and {workers} workers"
            );
            assert_eq!(
                stats1, stats_n,
                "{name}: prob stats differ between 1 and {workers} workers"
            );
        }
    }
}

/// Differential correctness of prob-alias mode: for every sample program
/// and every Olden kernel, the prob-optimized build computes the same
/// result as the unoptimized (`simple`) build.
#[test]
fn prob_optimized_matches_simple_results() {
    use earthc::earth_olden::{by_name, run, Build, Preset};
    use earthc::{Pipeline, Value};
    let cfg = CommOptConfig {
        alias: AliasMode::Prob,
        ..CommOptConfig::default()
    };
    let programs: &[(&str, &[Value])] = &[
        ("programs/count.ec", &[Value::Int(8)]),
        ("programs/distance.ec", &[]),
        ("programs/treesum.ec", &[Value::Int(4)]),
    ];
    for (path, args) in programs {
        let src =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/").to_string() + path)
                .unwrap();
        let build = |cfg: Option<CommOptConfig>| {
            Pipeline::new()
                .nodes(4)
                .optimizer(cfg)
                .verify(true)
                .run_source(&src, args)
                .unwrap_or_else(|e| panic!("{path}: {e}"))
        };
        let simple = build(None);
        let prob = build(Some(cfg.clone()));
        assert_eq!(simple.ret, prob.ret, "{path}: prob build changed result");
    }
    for bench in earthc::earth_olden::suite() {
        let bench = by_name(bench.name).unwrap();
        let simple = run(&bench, &Build::Simple, Preset::Test, 2).expect("simple run");
        let prob = run(&bench, &Build::Optimized(cfg.clone()), Preset::Test, 2).expect("prob run");
        assert_eq!(
            simple.ret, prob.ret,
            "{}: prob build changed result",
            bench.name
        );
    }
}

/// The end-to-end pipeline (with inlining and field reordering enabled, so
/// every transform pass runs) is worker-count-invariant too: same result,
/// same virtual time, same dynamic communication stats.
#[test]
fn full_pipeline_is_worker_invariant() {
    use earthc::{Pipeline, Value};
    let src = PAPER_FIGURES
        .iter()
        .find(|(n, _)| *n == "fig3_distance")
        .unwrap()
        .1;
    let wrapped = format!(
        r#"{src}
        double main() {{
            Point *p;
            p = malloc_on(1, sizeof(Point));
            p->x = 3.0;
            p->y = 4.0;
            return distance(p);
        }}
    "#
    );
    let run = |workers: usize| {
        Pipeline::new()
            .nodes(4)
            .workers(workers)
            .inlining(Some(earthc::earth_commopt::InlineConfig::default()))
            .field_reordering(true)
            .verify(true)
            .lint(true)
            .run_source(&wrapped, &[])
            .unwrap()
    };
    let one = run(1);
    for workers in [2usize, 8] {
        let n = run(workers);
        assert_eq!(one.ret, n.ret);
        assert_eq!(
            one.time_ns, n.time_ns,
            "virtual time must not depend on host threads"
        );
        assert_eq!(one.stats, n.stats);
    }
    assert_eq!(one.ret, Value::Double(5.0));
}
