//! End-to-end pipeline integration tests spanning all crates.

use earthc::earth_analysis::infer_locality;
use earthc::{CommOptConfig, Pipeline, Value};

const TREE_SUM: &str = r#"
    struct T { T* left; T* right; int v; };

    T* build(int depth, int lo, int span) {
        T *t;
        int half;
        t = malloc(sizeof(T));
        t->v = depth;
        if (depth == 0) {
            t->left = NULL;
            t->right = NULL;
            return t;
        }
        half = span / 2;
        if (half < 1) { half = 1; }
        t->left = build_at(depth - 1, lo, half);
        t->right = build_at(depth - 1, lo + half, half);
        return t;
    }

    T* build_at(int depth, int lo, int span) {
        int target;
        target = lo % num_nodes();
        return build(depth, lo, span) @ target;
    }

    int sum(T *t) {
        int a;
        int b;
        int w;
        int k;
        if (t == NULL) { return 0; }
        {^
            a = sum_at(t->left);
            b = sum_at(t->right);
        ^}
        // Local work per node so the parallel phase has something to
        // overlap with the spawns and remote calls.
        w = 0;
        k = 0;
        while (k < 120) {
            w = (w * 3 + t->v) % 1000003;
            k = k + 1;
        }
        return a + b + t->v + w % 7;
    }

    int sum_at(T *t) {
        if (t == NULL) { return 0; }
        return sum(t) @ OWNER_OF(t);
    }

    int main(int depth) {
        T *root;
        root = build(depth, 0, num_nodes());
        return sum(root);
    }
"#;

/// The full pipeline (locality inference + optimization) preserves results
/// across machine sizes on a recursive tree workload.
#[test]
fn tree_sum_agrees_across_configurations() {
    let expected = Pipeline::new()
        .nodes(1)
        .optimizer(None)
        .locality(false)
        .run_source(TREE_SUM, &[Value::Int(5)])
        .unwrap();
    for nodes in [1u16, 2, 5, 8] {
        for optimize in [false, true] {
            for locality in [false, true] {
                let r = Pipeline::new()
                    .nodes(nodes)
                    .optimizer(optimize.then(CommOptConfig::default))
                    .locality(locality)
                    .run_source(TREE_SUM, &[Value::Int(5)])
                    .unwrap();
                assert_eq!(
                    r.ret, expected.ret,
                    "nodes={nodes} optimize={optimize} locality={locality}"
                );
            }
        }
    }
}

/// Locality inference must be sound: it upgrades pointers to `local`, and
/// the simulator aborts on any local-compiled access that reaches remote
/// memory. Running a distribution-heavy program with inference on
/// exercises the checks.
#[test]
fn locality_inference_is_sound_at_runtime() {
    let mut prog = earthc::compile_earth_c(TREE_SUM).unwrap();
    let report = infer_locality(&mut prog);
    // The `build` subtree constructor only uses plain malloc: its local
    // pointers are inferred.
    assert!(!report.is_empty(), "inference should find local pointers");
    let r = Pipeline::new()
        .nodes(4)
        .optimizer(Some(CommOptConfig::default()))
        .locality(false) // already inferred above
        .run_program(prog, &[Value::Int(4)])
        .unwrap();
    assert!(matches!(r.ret, Value::Int(_)));
}

/// Virtual time is deterministic: identical runs give identical times,
/// stats, and results.
#[test]
fn simulation_is_deterministic() {
    let a = Pipeline::new()
        .nodes(4)
        .run_source(TREE_SUM, &[Value::Int(5)])
        .unwrap();
    let b = Pipeline::new()
        .nodes(4)
        .run_source(TREE_SUM, &[Value::Int(5)])
        .unwrap();
    assert_eq!(a.ret, b.ret);
    assert_eq!(a.time_ns, b.time_ns);
    assert_eq!(a.stats, b.stats);
}

/// Parallel tree sum actually speeds up with more nodes.
#[test]
fn tree_sum_scales() {
    let one = Pipeline::new()
        .nodes(1)
        .run_source(TREE_SUM, &[Value::Int(7)])
        .unwrap();
    let eight = Pipeline::new()
        .nodes(8)
        .run_source(TREE_SUM, &[Value::Int(7)])
        .unwrap();
    assert_eq!(one.ret, eight.ret);
    assert!(
        (eight.time_ns as f64) < 0.6 * one.time_ns as f64,
        "8 nodes {} vs 1 node {}",
        eight.time_ns,
        one.time_ns
    );
}

/// Frontend errors surface through the pipeline with context.
#[test]
fn frontend_errors_are_reported() {
    let err = Pipeline::new()
        .run_source("struct S { int x; }; int main() { return y; }", &[])
        .unwrap_err();
    assert!(err.to_string().contains("unknown variable"), "{err}");
}

/// Simulator errors surface too (entry arity mismatch).
#[test]
fn sim_errors_are_reported() {
    let err = Pipeline::new()
        .run_source(
            "struct S { int x; }; int main(int a) { return a; }",
            &[], // missing argument
        )
        .unwrap_err();
    assert!(err.to_string().contains("expects 1 arguments"), "{err}");
}

/// Local function inlining (the Phase-I transformation) preserves
/// semantics and composes with the communication optimizer.
#[test]
fn inlining_preserves_semantics_end_to_end() {
    use earthc::earth_commopt::{inline_functions, InlineConfig};
    let src = r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        double combine(Point *p, double k) {
            double a;
            double b;
            a = scale(p->x, k);
            b = scale(p->y, k);
            return a + b;
        }
        double main() {
            Point *p;
            p = malloc_on(1, sizeof(Point));
            p->x = 2.0;
            p->y = 3.0;
            return combine(p, 10.0);
        }
    "#;
    let plain = Pipeline::new()
        .nodes(2)
        .optimizer(None)
        .locality(false)
        .run_source(src, &[])
        .unwrap();
    let mut prog = earthc::compile_earth_c(src).unwrap();
    inline_functions(&mut prog, &InlineConfig::default());
    let inlined = Pipeline::new()
        .nodes(2)
        .optimizer(Some(CommOptConfig::default()))
        .locality(false)
        .run_program(prog, &[])
        .unwrap();
    assert_eq!(plain.ret, inlined.ret);
    assert_eq!(plain.ret, Value::Double(50.0));
    assert!(
        inlined.stats.total_comm() <= plain.stats.total_comm(),
        "inlining + optimization should not add communication"
    );
}

/// Every sample program under `programs/` compiles and runs under all
/// three builds with agreeing results. The optimized build runs with the
/// placement translation validator enabled: an unsound motion would abort
/// the pipeline rather than corrupt the comparison.
#[test]
fn sample_programs_compile_and_agree() {
    let mut checked = 0;
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/programs")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ec") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let prog =
            earthc::compile_earth_c(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let f = prog.function(prog.function_by_name("main").unwrap());
        let args: Vec<Value> = f.params.iter().map(|_| Value::Int(6)).collect();
        let simple = Pipeline::new()
            .nodes(4)
            .optimizer(None)
            .run_program(prog.clone(), &args)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let optimized = Pipeline::new()
            .nodes(4)
            .verify(true)
            .run_program(prog, &args)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(simple.ret, optimized.ret, "{}", path.display());
        assert!(
            optimized.stats.total_comm() <= simple.stats.total_comm(),
            "{}: optimization increased communication ({} -> {})",
            path.display(),
            simple.stats.total_comm(),
            optimized.stats.total_comm()
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the example programs, found {checked}"
    );
}

/// The verified pipeline also agrees on every Olden benchmark: simple vs
/// optimized-with-validation, differentially compared on real workloads.
#[test]
fn olden_differential_with_verification() {
    for bench in earthc::earth_olden::suite() {
        let args: Vec<Value> = (bench.args)(earthc::earth_olden::Preset::Test);
        let simple = Pipeline::new()
            .nodes(4)
            .optimizer(None)
            .run_source(bench.source, &args)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let optimized = Pipeline::new()
            .nodes(4)
            .verify(true)
            .run_source(bench.source, &args)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(simple.ret, optimized.ret, "{}", bench.name);
    }
}
