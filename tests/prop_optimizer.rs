//! Property-based differential testing of the whole pipeline: generate
//! random (well-typed, terminating) EARTH-C programs over a linked
//! structure and check that
//!
//! 1. the *sequential*, *simple*, and *optimized* builds agree on the
//!    result for several machine sizes (the optimizer preserves
//!    semantics and placement does not change results), and
//! 2. the optimized build never issues more remote operations than the
//!    simple one plus the bounded speculation allowance.

use earth_qcheck::Rng;
use earthc::earth_commopt::CommOptConfig;
use earthc::{Pipeline, Value};

/// A generated statement in the body of the test function.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `acc = acc + p-><field>;`
    ReadField(u8),
    /// `p-><field> = acc % 97 + k;`
    WriteField(u8, u8),
    /// `q = p->next; acc = acc + q-><field>;`
    ChaseAndRead(u8),
    /// `p = p->next;`
    Advance,
    /// `acc = bump(p) + acc;` — a callee that mutates `p->a`.
    CallBump,
    /// `if (acc % 3 == <r>) { ... } else { ... }`
    If(u8, Vec<GenStmt>, Vec<GenStmt>),
    /// A bounded loop running `n` times (fresh counter per loop).
    Loop(u8, Vec<GenStmt>),
}

fn field_name(i: u8) -> &'static str {
    ["a", "b", "c"][(i % 3) as usize]
}

fn render(stmts: &[GenStmt], out: &mut String, depth: usize, loop_id: &mut u32) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            GenStmt::ReadField(f) => {
                out.push_str(&format!("{pad}acc = acc + p->{};\n", field_name(*f)));
            }
            GenStmt::WriteField(f, k) => {
                out.push_str(&format!("{pad}p->{} = acc % 97 + {k};\n", field_name(*f)));
            }
            GenStmt::ChaseAndRead(f) => {
                out.push_str(&format!(
                    "{pad}q = p->next;\n{pad}acc = acc + q->{};\n",
                    field_name(*f)
                ));
            }
            GenStmt::Advance => out.push_str(&format!("{pad}p = p->next;\n")),
            GenStmt::CallBump => out.push_str(&format!("{pad}acc = bump(p) + acc;\n")),
            GenStmt::If(r, t, e) => {
                out.push_str(&format!("{pad}if (acc % 3 == {}) {{\n", r % 3));
                render(t, out, depth + 1, loop_id);
                out.push_str(&format!("{pad}}} else {{\n"));
                render(e, out, depth + 1, loop_id);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Loop(n, body) => {
                *loop_id += 1;
                let j = format!("j{loop_id}");
                out.push_str(&format!(
                    "{pad}{j} = 0;\n{pad}while ({j} < {}) {{\n",
                    1 + (n % 3)
                ));
                render(body, out, depth + 1, loop_id);
                out.push_str(&format!("{pad}    {j} = {j} + 1;\n{pad}}}\n"));
            }
        }
    }
}

fn count_loops(stmts: &[GenStmt]) -> u32 {
    stmts
        .iter()
        .map(|s| match s {
            GenStmt::If(_, t, e) => count_loops(t) + count_loops(e),
            GenStmt::Loop(_, b) => 1 + count_loops(b),
            _ => 0,
        })
        .sum()
}

fn program_source(stmts: &[GenStmt]) -> String {
    let n_loops = count_loops(stmts);
    let decls: String = (1..=n_loops).map(|i| format!("    int j{i};\n")).collect();
    let mut body = String::new();
    let mut loop_id = 0;
    render(stmts, &mut body, 0, &mut loop_id);
    format!(
        r#"
struct S {{ S* next; int a; int b; int c; }};

int bump(S *x) {{
    x->a = x->a + 1;
    return x->a;
}}

int walk(S *head) {{
    S *p;
    S *q;
    int acc;
{decls}    acc = 0;
    p = head;
{body}    return acc;
}}

int main(int n) {{
    S *head;
    S *cur;
    int i;
    head = malloc(sizeof(S));
    head->a = 1;
    head->b = 2;
    head->c = 3;
    cur = head;
    for (i = 0; i < n; i = i + 1) {{
        cur->next = malloc_on(i % num_nodes(), sizeof(S));
        cur = cur->next;
        cur->a = i;
        cur->b = i * 2;
        cur->c = i % 5;
    }}
    cur->next = head;
    return walk(head);
}}
"#
    )
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> GenStmt {
    // Leaves weighted 4:1:1 against compounds, as in the old strategy.
    let roll = if depth == 0 { 0 } else { rng.index(6) };
    match roll {
        4 => GenStmt::If(rng.u8(), gen_body(rng, depth - 1), gen_body(rng, depth - 1)),
        5 => GenStmt::Loop(rng.u8(), gen_body(rng, depth - 1)),
        _ => match rng.index(5) {
            0 => GenStmt::ReadField(rng.u8()),
            1 => GenStmt::WriteField(rng.u8(), rng.u8() % 128),
            2 => GenStmt::ChaseAndRead(rng.u8()),
            3 => GenStmt::Advance,
            _ => GenStmt::CallBump,
        },
    }
}

fn gen_body(rng: &mut Rng, depth: u32) -> Vec<GenStmt> {
    let n = 1 + rng.index(4);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

#[test]
fn optimizer_preserves_semantics() {
    earth_qcheck::cases(48, |rng| {
        let stmts = gen_body(rng, 2);
        let n = rng.range(3, 12);
        let src = program_source(&stmts);
        let args = [Value::Int(n)];
        let sequential = Pipeline::new()
            .nodes(1)
            .optimizer(None)
            .locality(false)
            .run_source(&src, &args)
            .unwrap_or_else(|e| panic!("sequential: {e}\n{src}"));
        for nodes in [1u16, 3] {
            let simple = Pipeline::new()
                .nodes(nodes)
                .optimizer(None)
                .locality(false)
                .run_source(&src, &args)
                .unwrap_or_else(|e| panic!("simple/{nodes}: {e}\n{src}"));
            let optimized = Pipeline::new()
                .nodes(nodes)
                .optimizer(Some(CommOptConfig::default()))
                .locality(false)
                .run_source(&src, &args)
                .unwrap_or_else(|e| panic!("optimized/{nodes}: {e}\n{src}"));
            assert_eq!(simple.ret, sequential.ret, "simple/{nodes} result\n{src}");
            assert_eq!(
                optimized.ret, sequential.ret,
                "optimized/{nodes} result\n{src}"
            );
        }
    });
}

#[test]
fn conservative_mode_bounds_communication() {
    // The paper's read propagation is *optimistic*: merging reads from
    // conditional alternatives can add a spurious (but safe) field
    // read on paths that did not originally perform it, so a strict
    // "never more communication" bound does not hold by design. With
    // speculation disabled the overshoot is bounded: every inserted
    // read sits at a point whose dereference is guaranteed and has
    // estimated frequency >= 1, so the total cannot exceed the simple
    // build by more than a modest factor.
    earth_qcheck::cases(48, |rng| {
        let stmts = gen_body(rng, 2);
        let n = rng.range(3, 10);
        let src = program_source(&stmts);
        let args = [Value::Int(n)];
        let cfg = CommOptConfig {
            speculative_remote_ok: false,
            ..CommOptConfig::default()
        };
        let simple = Pipeline::new()
            .nodes(2)
            .optimizer(None)
            .locality(false)
            .run_source(&src, &args)
            .unwrap_or_else(|e| panic!("simple: {e}\n{src}"));
        let optimized = Pipeline::new()
            .nodes(2)
            .optimizer(Some(cfg))
            .locality(false)
            .run_source(&src, &args)
            .unwrap_or_else(|e| panic!("optimized: {e}\n{src}"));
        assert_eq!(simple.ret, optimized.ret);
        let bound = simple.stats.total_comm() + simple.stats.total_comm() / 4 + 4;
        assert!(
            optimized.stats.total_comm() <= bound,
            "optimized {} > bound {} (simple {})\n{}",
            optimized.stats.total_comm(),
            bound,
            simple.stats.total_comm(),
            src
        );
    });
}
