//! Pass-manager integration tests: one shared analysis per pipeline run,
//! pass ordering, instrumentation, and failure routing.

use earthc::earth_commopt::InlineConfig;
use earthc::{Pipeline, PipelineError, Value};

const SRC: &str = r#"
    struct Point { double x; double y; };
    double distance(Point *p) {
        double d;
        d = sqrt(p->x * p->x + p->y * p->y);
        return d;
    }
    double main() {
        Point *p;
        p = malloc_on(1, sizeof(Point));
        p->x = 3.0;
        p->y = 4.0;
        return distance(p);
    }
"#;

/// Regression test for the historical `--verify-placement` repeated
/// analysis (verify, lint, and optimize each ran `earth_analysis::analyze`
/// privately): a verify + lint + optimize pipeline run performs exactly
/// ONE whole-program analysis, asserted via the cache's miss counter.
/// Verify computes it; lint and optimize answer from the cache.
#[test]
fn verify_lint_optimize_analyze_once() {
    let (result, report) = Pipeline::new()
        .nodes(2)
        .verify(true)
        .lint(true)
        .run_source_report(SRC, &[])
        .unwrap();
    assert_eq!(result.ret, Value::Double(5.0));
    assert_eq!(
        report.cache.misses,
        1,
        "exactly one whole-program analysis; got:\n{}",
        report.render()
    );
    assert_eq!(
        report.cache.hits,
        2,
        "lint and optimize reuse the verify pass's analysis:\n{}",
        report.render()
    );
}

/// The pipeline registers passes in the documented order and reports one
/// entry per executed pass.
#[test]
fn pass_order_matches_configuration() {
    let pipeline = Pipeline::new()
        .inlining(Some(InlineConfig::default()))
        .field_reordering(true)
        .verify(true)
        .lint(true);
    assert_eq!(
        pipeline.pass_manager().pass_names(),
        [
            "inline",
            "field-reorder",
            "locality",
            "verify-placement",
            "race-lint",
            "optimize",
            "validate-ir"
        ]
    );
    let (_, report) = pipeline.run_source_report(SRC, &[]).unwrap();
    let names: Vec<&str> = report.passes.iter().map(|p| p.name).collect();
    assert_eq!(
        names,
        [
            "inline",
            "field-reorder",
            "locality",
            "verify-placement",
            "race-lint",
            "optimize",
            "validate-ir"
        ]
    );
    // Still one analysis, even with every transform pass enabled.
    assert_eq!(report.cache.misses, 1, "{}", report.render());
}

/// `--no-opt` pipelines skip verify/optimize but still validate the IR.
#[test]
fn unoptimized_pipeline_skips_optimizer_passes() {
    let pipeline = Pipeline::new().optimizer(None).verify(true);
    assert_eq!(
        pipeline.pass_manager().pass_names(),
        ["locality", "validate-ir"]
    );
    let (_, report) = pipeline.run_source_report(SRC, &[]).unwrap();
    assert_eq!(report.cache.misses, 0, "no pass needed the analysis");
}

/// The optimize pass records motion counters on the report.
#[test]
fn optimize_pass_reports_motion_counters() {
    let (_, report) = Pipeline::new().run_source_report(SRC, &[]).unwrap();
    let opt = report.pass("optimize").expect("optimize ran");
    assert_eq!(opt.get_counter("pipelined_reads"), Some(2));
    assert_eq!(opt.get_counter("reads_rewritten"), Some(4));
    assert!(opt.get_counter("workers").unwrap() >= 1);
    // Exactly the functions selection rewrote were invalidated.
    assert_eq!(
        opt.get_counter("functions_changed"),
        Some(opt.cache.invalidations)
    );
}

/// A racy program surfaces its verdicts through the report without
/// aborting the run.
#[test]
fn race_lint_pass_records_verdicts() {
    let racy = r#"
        struct N { N* next; int v; };
        int main(int n) {
            N *a;
            int i;
            a = malloc(sizeof(N));
            a->v = 0;
            forall (i = 0; i < n; i = i + 1) {
                a->v = a->v + i;
            }
            return a->v;
        }
    "#;
    let (_, report) = Pipeline::new()
        .lint(true)
        .run_source_report(racy, &[Value::Int(3)])
        .unwrap();
    let lint = report.pass("race-lint").expect("lint ran");
    assert_eq!(lint.get_counter("racy"), Some(1), "{}", report.render());
    assert!(
        lint.diagnostics.iter().any(|d| d.code == "PAR001"),
        "verdict diagnostics recorded"
    );
}

/// The verify pass reports a zero violation counter on clean programs and
/// the JSON report includes every pass entry.
#[test]
fn verify_pass_reports_clean_run_and_json_shape() {
    let (_, report) = Pipeline::new()
        .verify(true)
        .run_source_report(SRC, &[])
        .unwrap();
    let verify = report.pass("verify-placement").expect("verify ran");
    assert_eq!(verify.get_counter("violations"), Some(0));
    let json = report.to_json();
    assert!(json.contains("\"name\":\"verify-placement\""), "{json}");
    // The report JSON parses as a diagnostics-style object tree (smoke:
    // balanced braces, no trailing comma artifacts).
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "{json}"
    );
}

/// Worker-count configuration is honored end to end — clamped through
/// `clamp_workers` so `0` and oversubscribed requests can't spawn a
/// degenerate pool — and has no effect on results (full determinism
/// tests live in tests/determinism.rs).
#[test]
fn workers_config_reaches_optimize_pass() {
    let (r1, report1) = Pipeline::new()
        .workers(1)
        .run_source_report(SRC, &[])
        .unwrap();
    let (r8, report8) = Pipeline::new()
        .workers(8)
        .run_source_report(SRC, &[])
        .unwrap();
    let (r0, report0) = Pipeline::new()
        .workers(0)
        .run_source_report(SRC, &[])
        .unwrap();
    assert_eq!(
        report1.pass("optimize").unwrap().get_counter("workers"),
        Some(1)
    );
    assert_eq!(
        report8.pass("optimize").unwrap().get_counter("workers"),
        Some(earthc::earth_commopt::clamp_workers(8) as u64)
    );
    assert_eq!(
        report0.pass("optimize").unwrap().get_counter("workers"),
        Some(1),
        "a zero-worker request must clamp up to one"
    );
    assert_eq!(r1.ret, r8.ret);
    assert_eq!(r1.time_ns, r8.time_ns);
    assert_eq!(r1.ret, r0.ret);
    assert_eq!(r1.time_ns, r0.time_ns);
}

/// Legacy entry points still work and stay consistent with the report
/// variants.
#[test]
fn legacy_run_matches_report_run() {
    let plain = Pipeline::new().run_source(SRC, &[]).unwrap();
    let (reported, _) = Pipeline::new().run_source_report(SRC, &[]).unwrap();
    assert_eq!(plain.ret, reported.ret);
    assert_eq!(plain.time_ns, reported.time_ns);
}

/// Frontend errors still come out of the report path as
/// `PipelineError::Frontend`.
#[test]
fn frontend_errors_propagate_through_report_path() {
    let err = Pipeline::new()
        .run_source_report("int main() { return y; }", &[])
        .unwrap_err();
    assert!(matches!(err, PipelineError::Frontend(_)), "{err}");
}
