//! Runs the Olden `power` benchmark across machine sizes, comparing the
//! sequential, simple, and communication-optimized builds — one row of the
//! paper's Table III.
//!
//! Run with: `cargo run --release --example olden_power`

use earthc::earth_commopt::CommOptConfig;
use earthc::earth_olden::{by_name, run, Build, Preset};

fn main() {
    let bench = by_name("power").expect("power is in the suite");
    let seq = run(&bench, &Build::Sequential, Preset::Small, 1).expect("sequential");
    println!("sequential C: {:.4}s\n", seq.time_ns as f64 / 1e9);
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>7}",
        "procs", "simple(s)", "optimized(s)", "simple-SU", "opt-SU", "%impr"
    );
    for procs in [1u16, 2, 4, 8, 16] {
        let simple = run(&bench, &Build::Simple, Preset::Small, procs).expect("simple");
        let opt = run(
            &bench,
            &Build::Optimized(CommOptConfig::default()),
            Preset::Small,
            procs,
        )
        .expect("optimized");
        assert_eq!(simple.ret, seq.ret);
        assert_eq!(opt.ret, seq.ret);
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>10.2} {:>10.2} {:>7.2}",
            procs,
            simple.time_ns as f64 / 1e9,
            opt.time_ns as f64 / 1e9,
            seq.time_ns as f64 / simple.time_ns as f64,
            seq.time_ns as f64 / opt.time_ns as f64,
            100.0 * (simple.time_ns as f64 - opt.time_ns as f64) / simple.time_ns as f64,
        );
    }
}
