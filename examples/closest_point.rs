//! The paper's running example (Figures 7 and 8): the closest-point loop.
//!
//! Prints the RemoteReads sets computed by possible-placement analysis
//! (Figure 7), the transformed program after communication selection
//! (Figure 8(b)), and measures the dynamic effect.
//!
//! Run with: `cargo run --example closest_point`

use earthc::earth_analysis;
use earthc::earth_commopt::{analyze_placement, optimize_program, CommOptConfig, FreqModel};
use earthc::earth_ir::{pretty, StmtKind};
use earthc::{CommOptConfig as Cfg, Pipeline};

const SRC: &str = r#"
struct Point { Point* next; double x; double y; };

double f(double ax, double ay, double bx, double by) {
    return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
}

double closest(Point *head, Point *t, double epsilon) {
    Point *p;
    Point *close;
    double ax; double ay; double bx; double by;
    double dist; double cx; double tx; double diffx;
    double cy; double ty; double diffy;
    close = head;
    p = head;
    while (p != NULL) {
        ax = p->x;
        ay = p->y;
        bx = t->x;
        by = t->y;
        dist = f(ax, ay, bx, by);
        if (dist < epsilon) { close = p; }
        p = p->next;
    }
    cx = close->x;
    tx = t->x;
    diffx = cx - tx;
    cy = close->y;
    ty = t->y;
    diffy = cy - ty;
    return diffx * diffx + diffy * diffy;
}

double main(int n) {
    Point *head;
    Point *q;
    Point *t;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        q = malloc_on(i % num_nodes(), sizeof(Point));
        q->x = (rand() % 1000) / 10.0;
        q->y = (rand() % 1000) / 10.0;
        q->next = head;
        head = q;
    }
    t = malloc(sizeof(Point));
    t->x = 50.0;
    t->y = 50.0;
    return closest(head, t, 100.0);
}
"#;

fn main() {
    let prog = earthc::compile_earth_c(SRC).expect("compiles");
    let fid = prog.function_by_name("closest").unwrap();
    let f = prog.function(fid);

    // Figure 7: the RemoteReads set at the top of the function and at the
    // loop entry.
    let analysis = earth_analysis::analyze(&prog);
    let placement = analyze_placement(f, analysis.function(fid), &FreqModel::default());
    println!("== RemoteReads sets (the paper's Figure 7) ==\n");
    let mut anchors = Vec::new();
    f.body.walk(&mut |s| {
        if matches!(s.kind, StmtKind::Basic(_) | StmtKind::While { .. }) {
            anchors.push(s.label);
        }
    });
    for l in anchors.iter().take(12) {
        if let Some(set) = placement.reads_before.get(l) {
            if !set.is_empty() {
                println!("  RemoteReads({l}) = {set}");
            }
        }
    }

    // Figure 8(b): the transformed function.
    let mut optimized = prog.clone();
    optimize_program(&mut optimized, &CommOptConfig::default());
    println!("\n== After communication selection (Figure 8(b)) ==\n");
    println!(
        "{}",
        pretty::print_function(
            &optimized,
            fid,
            &pretty::PrettyOptions {
                show_labels: false,
                ..Default::default()
            }
        )
    );

    // Dynamic effect on a 4-node machine.
    let args = [earthc::Value::Int(200)];
    let simple = Pipeline::new()
        .nodes(4)
        .optimizer(None)
        .locality(false)
        .run_source(SRC, &args)
        .expect("simple");
    let fast = Pipeline::new()
        .nodes(4)
        .optimizer(Some(Cfg::default()))
        .locality(false)
        .run_source(SRC, &args)
        .expect("optimized");
    assert_eq!(simple.ret, fast.ret);
    println!("simple:    {:>9} ns | {}", simple.time_ns, simple.stats);
    println!("optimized: {:>9} ns | {}", fast.time_ns, fast.stats);
    println!(
        "communication reduced {:.1}%, time reduced {:.1}%",
        100.0 * (1.0 - fast.stats.total_comm() as f64 / simple.stats.total_comm() as f64),
        100.0 * (1.0 - fast.time_ns as f64 / simple.time_ns as f64)
    );
}
