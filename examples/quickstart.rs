//! Quickstart: compile an EARTH-C function, watch the communication
//! optimizer transform it (the paper's Figure 3), and run both versions on
//! the simulated EARTH-MANNA machine.
//!
//! Run with: `cargo run --example quickstart`

use earthc::earth_ir::pretty;
use earthc::{CommOptConfig, Pipeline, Value};

const SRC: &str = r#"
struct Point { double x; double y; };

double distance(Point *p) {
    double d;
    d = sqrt(p->x * p->x + p->y * p->y);
    return d;
}

double main() {
    Point *p;
    p = malloc_on(1, sizeof(Point));
    p->x = 3.0;
    p->y = 4.0;
    return distance(p);
}
"#;

fn main() {
    // 1. Compile to SIMPLE IR: three-address form, one remote operation
    //    per statement (remote dereferences print as `p~>x`).
    let prog = earthc::compile_earth_c(SRC).expect("compiles");
    println!("== SIMPLE IR (the paper's Figure 3(b)) ==\n");
    println!(
        "{}",
        pretty::print_function_default(&prog, prog.function_by_name("distance").unwrap())
    );

    // 2. Optimize: possible-placement analysis + communication selection.
    let mut optimized = prog.clone();
    let report = earthc::earth_commopt::optimize_program(&mut optimized, &CommOptConfig::default());
    println!("== After communication optimization (Figure 3(c)) ==\n");
    println!(
        "{}",
        pretty::print_function_default(&optimized, optimized.function_by_name("distance").unwrap())
    );
    println!(
        "optimizer: {} pipelined reads inserted, {} original reads rewritten\n",
        report.total().pipelined_reads,
        report.total().reads_rewritten
    );

    // 3. Run both versions on a 2-node simulated EARTH-MANNA machine.
    let simple = Pipeline::new()
        .nodes(2)
        .optimizer(None)
        .locality(false)
        .run_source(SRC, &[])
        .expect("simple run");
    let fast = Pipeline::new()
        .nodes(2)
        .locality(false)
        .run_source(SRC, &[])
        .expect("optimized run");
    assert_eq!(simple.ret, Value::Double(5.0));
    assert_eq!(fast.ret, Value::Double(5.0));
    println!("simple:    {:>8} ns | {}", simple.time_ns, simple.stats);
    println!("optimized: {:>8} ns | {}", fast.time_ns, fast.stats);
    println!(
        "speedup: {:.2}x",
        simple.time_ns as f64 / fast.time_ns as f64
    );
}
