//! Demonstrates tuning both cost models: the machine's timing (simulate a
//! slower network) and the optimizer's pipelining-vs-blocking tradeoff.
//!
//! On a network with expensive per-message overhead but cheap streaming,
//! blocking pays off for smaller groups; with the block threshold raised,
//! the optimizer stops emitting blkmovs entirely.
//!
//! Run with: `cargo run --example custom_cost_model`

use earthc::{CommOptConfig, CostModel, Pipeline};

const SRC: &str = r#"
struct Body { double x; double y; double z; double m; };

double energy(Body *b) {
    return b->m * (b->x * b->x + b->y * b->y + b->z * b->z);
}

double main(int n) {
    Body *b;
    double acc;
    int i;
    acc = 0.0;
    for (i = 0; i < n; i = i + 1) {
        b = malloc_on(1 + i % (num_nodes() - 1), sizeof(Body));
        b->x = i;
        b->y = i + 1.0;
        b->z = i + 2.0;
        b->m = 1.0;
        acc = acc + energy(b);
    }
    return acc;
}
"#;

fn run(label: &str, cost: CostModel, opt: CommOptConfig) {
    let r = Pipeline::new()
        .nodes(4)
        .cost_model(cost)
        .optimizer(Some(opt))
        .locality(false)
        .run_source(SRC, &[earthc::Value::Int(100)])
        .expect("runs");
    println!("{label:<28} {:>10} ns | {}", r.time_ns, r.stats);
}

fn main() {
    // The EARTH-MANNA defaults (Table I).
    run(
        "manna defaults",
        CostModel::default(),
        CommOptConfig::default(),
    );

    // A network with 4x the message overhead: blocking matters even more.
    let slow = CostModel {
        read_issue_ns: 4 * 1908,
        read_latency_ns: 4 * 7109,
        write_issue_ns: 4 * 1749,
        write_latency_ns: 4 * 6458,
        blk_issue_ns: 4 * 2602,
        blk_latency_ns: 4 * 9700,
        ..CostModel::default()
    };
    run("4x slower network", slow, CommOptConfig::default());

    // Forbid blocking via the optimizer's threshold: everything pipelines.
    let no_blocks = CommOptConfig {
        block_threshold: usize::MAX,
        ..CommOptConfig::default()
    };
    run(
        "blocking disabled (thr=inf)",
        CostModel::default(),
        no_blocks,
    );
}
