// The paper's Figure 1(a): counting occurrences of a node value in a
// distributed list with a forall loop, a shared counter, and @OWNER_OF.
//   earthcc run programs/count.ec --nodes 4 --arg 30
struct node { node* next; int value; };

int equal_node(node local *p, node *q) {
    return p->value == q->value;
}

int count(node *head, node *x) {
    shared int cnt;
    node *p;
    writeto(&cnt, 0);
    forall (p = head; p != NULL; p = p->next) {
        if (equal_node(p, x) @ OWNER_OF(p)) {
            addto(&cnt, 1);
        }
    }
    return valueof(&cnt);
}

int main(int n) {
    node *head;
    node *q;
    node *x;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        q = malloc_on(i % num_nodes(), sizeof(node));
        q->value = i % 5;
        q->next = head;
        head = q;
    }
    x = malloc(sizeof(node));
    x->value = 2;
    return count(head, x);
}
