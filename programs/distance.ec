// The paper's Figure 3 example, runnable with:
//   earthcc stats programs/distance.ec --nodes 2
struct Point { double x; double y; };

double distance(Point *p) {
    double d;
    d = sqrt(p->x * p->x + p->y * p->y);
    return d;
}

double main() {
    Point *p;
    double acc;
    int i;
    acc = 0.0;
    for (i = 0; i < 100; i = i + 1) {
        p = malloc_on(i % num_nodes(), sizeof(Point));
        p->x = i;
        p->y = i + 1.0;
        acc = acc + distance(p);
    }
    return acc;
}
