// Parallel divide-and-conquer sum over a distributed binary tree.
//   earthcc stats programs/treesum.ec --nodes 8 --arg 8
struct T { T* left; T* right; int v; };

T* build(int depth, int lo, int span) {
    T *t;
    int half;
    t = malloc(sizeof(T));
    t->v = depth;
    if (depth == 0) {
        t->left = NULL;
        t->right = NULL;
        return t;
    }
    half = span / 2;
    if (half < 1) { half = 1; }
    t->left = build_at(depth - 1, lo, half);
    t->right = build_at(depth - 1, lo + half, half);
    return t;
}

T* build_at(int depth, int lo, int span) {
    int target;
    target = lo % num_nodes();
    return build(depth, lo, span) @ target;
}

int sum(T *t) {
    int a;
    int b;
    if (t == NULL) { return 0; }
    {^
        a = sum_at(t->left);
        b = sum_at(t->right);
    ^}
    return a + b + t->v;
}

int sum_at(T *t) {
    if (t == NULL) { return 0; }
    return sum(t) @ OWNER_OF(t);
}

int main(int depth) {
    T *root;
    root = build(depth, 0, num_nodes());
    return sum(root);
}
