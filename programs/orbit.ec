// Owner-confined list walk: every cell is allocated with a plain
// malloc on the node that builds the list, the list head never escapes
// to another node, and the walk runs unplaced on the same node.  The
// binary optimizer still treats `c->v` / `c->next` as maybe-remote and
// fetches them; whole-program escape analysis proves the whole region
// node-local and deletes the communication outright:
//   earthcc stats programs/orbit.ec --nodes 2
//   earthcc stats programs/orbit.ec --nodes 2 --escape on
struct body { body* next; double v; };

double orbit(body *c) {
    double acc;
    acc = 0.0;
    while (c != NULL) {
        acc = acc + c->v;
        c = c->next;
    }
    return acc;
}

double main(int n) {
    body *head;
    body *b;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        b = malloc(sizeof(body));
        b->v = i + 1.0;
        b->next = head;
        head = b;
    }
    return orbit(head);
}
